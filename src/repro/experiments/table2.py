"""Table II: performance overhead of the malicious system-call wrappers.

The paper measures the execution time of the ``write`` system call in the
RAVEN control process over 50 000 invocations, in three configurations:

- baseline (no wrapper);
- with the *logging* wrapper (process-name + fd check, packet capture,
  UDP forwarding to the attacker);
- with the *injection* wrapper (process-name + fd check, Byte 0 state
  check, byte overwrite).

The reproduction measures the same three code paths on the simulated
syscall layer.  Absolute numbers depend on the host; the paper's *shape* —
logging costs an order of magnitude more than injection, and both stay
far inside the 1 ms real-time budget — is the claim under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.attacks.eavesdrop import EavesdropLogger, build_eavesdropper_library
from repro.attacks.injection import DacOffsetInjection, build_scenario_b_library
from repro.attacks.malware import PedalDownTrigger
from repro.control.state_machine import RobotState
from repro.experiments.report import format_table
from repro.hw.usb_packet import encode_command_packet
from repro.obs.timing import Stopwatch
from repro.sysmodel.linker import DynamicLinker, SystemEnvironment
from repro.teleop.network import LoopbackExfiltration


class NullUsbDevice:
    """A USB-board stand-in that swallows packets (isolates wrapper cost)."""

    def fd_write(self, data: bytes) -> int:
        return len(data)

    def fd_read(self, max_bytes: int) -> bytes:
        return b"\x00" * max_bytes


@dataclass
class OverheadStats:
    """Timing statistics of one configuration, in microseconds."""

    name: str
    min_us: float
    max_us: float
    mean_us: float
    std_us: float

    @classmethod
    def from_samples(cls, name: str, seconds: np.ndarray) -> "OverheadStats":
        us = seconds * 1e6
        return cls(
            name=name,
            min_us=float(us.min()),
            max_us=float(us.max()),
            mean_us=float(us.mean()),
            std_us=float(us.std()),
        )


def _pedal_down_packet() -> bytes:
    return encode_command_packet(
        RobotState.PEDAL_DOWN, watchdog=True, dac_values=[1200, -800, 500]
    )


def _time_writes(process, fd: int, packet: bytes, samples: int) -> np.ndarray:
    times = np.empty(samples)
    write = process.write
    probe = Stopwatch()
    for i in range(samples):
        with probe:
            write(fd, packet)
        times[i] = probe.elapsed_s
    return times


def build_configurations() -> Dict[str, tuple]:
    """(process, fd) for baseline, logging and injection configurations."""
    packetless = {}

    # Baseline: clean process.
    env = SystemEnvironment()
    process = DynamicLinker(env).spawn("r2_control")
    fd = process.open_device(NullUsbDevice())
    packetless["baseline"] = (process, fd)

    # Logging wrapper: forwards every packet over a real loopback UDP
    # socket, as the paper's wrapper forwards to the attacker's server.
    env = SystemEnvironment()
    library, _ = build_eavesdropper_library(
        EavesdropLogger(), sink=LoopbackExfiltration()
    )
    env.set_user_preload("surgeon", library)
    process = DynamicLinker(env).spawn("r2_control")
    fd = process.open_device(NullUsbDevice())
    packetless["logging"] = (process, fd)

    # Injection wrapper (trigger permanently armed on Pedal Down).
    env = SystemEnvironment()
    trigger = PedalDownTrigger.for_pedal_down(single_burst=False)
    library = build_scenario_b_library(trigger, DacOffsetInjection(5000))
    env.set_user_preload("surgeon", library)
    process = DynamicLinker(env).spawn("r2_control")
    fd = process.open_device(NullUsbDevice())
    packetless["injection"] = (process, fd)

    return packetless


def run_table2(samples: int = 50_000) -> List[OverheadStats]:
    """Measure all three configurations; returns one row each."""
    packet = _pedal_down_packet()
    rows = []
    for name, (process, fd) in build_configurations().items():
        # Warm up caches/JIT-free interpreter state.
        _time_writes(process, fd, packet, min(1000, samples))
        seconds = _time_writes(process, fd, packet, samples)
        rows.append(OverheadStats.from_samples(name, seconds))
    return rows


def format_results(rows: List[OverheadStats]) -> str:
    """Table II-style report."""
    table_rows = [
        [r.name, f"{r.min_us:.2f}", f"{r.max_us:.2f}", f"{r.mean_us:.2f}", f"{r.std_us:.2f}"]
        for r in rows
    ]
    base = next(r for r in rows if r.name == "baseline")
    for r in rows:
        if r.name != "baseline":
            table_rows.append(
                [
                    f"{r.name} overhead",
                    "",
                    "",
                    f"{r.mean_us - base.mean_us:+.2f}",
                    "",
                ]
            )
    return format_table(
        ["configuration", "min (us)", "max (us)", "mean (us)", "std (us)"],
        table_rows,
    )

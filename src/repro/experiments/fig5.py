"""Figure 5: USB packet byte patterns over one run.

Runs one complete teleoperation session — E-STOP, start button, Init,
Pedal Up, Pedal Down — with the eavesdropping library preloaded, then
analyzes the captured packets byte by byte the way the paper's attacker
does: per-byte cardinalities, the many-valued DAC bytes (Byte 4 in the
paper), and Byte 0 switching among 8 raw values that collapse to the 4
operational states once the periodic watchdog bit is removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import constants
from repro.attacks.analysis import (
    byte_cardinalities,
    byte_value_series,
    find_watchdog_bit,
    infer_state_byte,
    infer_state_sequence,
)
from repro.attacks.eavesdrop import EavesdropLogger, build_eavesdropper_library
from repro.experiments.report import format_table
from repro.sim.rig import RigConfig, SurgicalRig


def capture_run(
    seed: int = 0,
    duration_s: float = 2.0,
    trajectory_name: str = "circle",
    pedal_release_s: Optional[float] = None,
) -> List[bytes]:
    """One eavesdropped run; returns the captured command packets."""
    logger = EavesdropLogger()
    library, _ = build_eavesdropper_library(logger)
    config = RigConfig(
        seed=seed,
        duration_s=duration_s,
        trajectory_name=trajectory_name,
        pedal_release_s=pedal_release_s,
    )
    rig = SurgicalRig(config, preload_libraries=[library])
    rig.run()
    return logger.command_packets()


@dataclass
class Fig5Result:
    """Everything Figure 5 shows, as data."""

    series: np.ndarray
    cardinalities: List[int]
    state_byte: int
    watchdog_bit: Optional[int]
    raw_state_values: List[int]
    masked_state_values: List[int]
    segments: list


def run_fig5(seed: int = 0, duration_s: float = 2.0) -> Fig5Result:
    """Capture one run and perform the per-byte analysis."""
    packets = capture_run(seed=seed, duration_s=duration_s)
    series = byte_value_series(packets)
    cards = byte_cardinalities(series)
    inference = infer_state_byte(series)
    _mapping, segments = infer_state_sequence(
        series, inference.byte_index, inference.watchdog_bit
    )
    raw_values = sorted(int(v) for v in np.unique(series[:, inference.byte_index]))
    return Fig5Result(
        series=series,
        cardinalities=cards,
        state_byte=inference.byte_index,
        watchdog_bit=inference.watchdog_bit,
        raw_state_values=raw_values,
        masked_state_values=sorted(inference.masked_values),
        segments=segments,
    )


def format_results(result: Fig5Result) -> str:
    """Figure 5-style textual report."""
    rows = [
        [f"byte {i}", c, "state byte" if i == result.state_byte else ""]
        for i, c in enumerate(result.cardinalities)
    ]
    table = format_table(["byte", "distinct values", "note"], rows)
    lines = [
        table,
        "",
        f"state byte: Byte {result.state_byte}",
        f"watchdog bit: bit {result.watchdog_bit} "
        f"(paper: bit {constants.USB_WATCHDOG_BIT})",
        f"raw Byte {result.state_byte} values ({len(result.raw_state_values)}): "
        + ", ".join(f"0x{v:02X}" for v in result.raw_state_values),
        f"after removing watchdog bit ({len(result.masked_state_values)}): "
        + ", ".join(f"0x{v:02X}" for v in result.masked_state_values),
        "state segments: "
        + " -> ".join(f"{name}[{end - start}]" for start, end, name in result.segments),
    ]
    return "\n".join(lines)

"""Command-line runner for the experiment drivers.

Regenerate any of the paper's artifacts without pytest::

    python -m repro.experiments table2 fig5
    python -m repro.experiments all
    REPRO_SCALE=smoke python -m repro.experiments table4 fig9

Artifacts print to stdout; expensive intermediates (thresholds, campaign
outcomes) are cached under ``.cache/`` exactly as the benchmark harness
does.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments.scale import current_scale
from repro.obs.timing import Stopwatch


def _table1(jobs=None) -> str:
    from repro.experiments.table1 import format_results, run_table1

    return format_results(run_table1())


def _table2(jobs=None) -> str:
    from repro.experiments.table2 import format_results, run_table2

    return format_results(run_table2(samples=current_scale().syscall_samples))


def _fig5(jobs=None) -> str:
    from repro.experiments.fig5 import format_results, run_fig5

    return format_results(
        run_fig5(duration_s=current_scale().capture_duration_s)
    )


def _fig6(jobs=None) -> str:
    from repro.experiments.fig6 import format_results, run_fig6

    scale = current_scale()
    return format_results(
        run_fig6(runs=scale.capture_runs, duration_s=scale.capture_duration_s)
    )


def _fig8(jobs=None) -> str:
    from repro.experiments.fig8 import format_results, run_fig8

    scale = current_scale()
    return format_results(
        run_fig8(
            runs=scale.validation_runs,
            duration_s=scale.validation_duration_s,
        )
    )


def _table4(jobs=None) -> str:
    from repro.experiments.table4 import (
        average_accuracy,
        format_results,
        run_table4,
    )

    rows = run_table4(jobs=jobs)
    return (
        format_results(rows)
        + f"\n\naverage dynamic-model accuracy: "
        f"{average_accuracy(rows) * 100:.1f}% (paper: ~90%)"
    )


def _fig9(jobs=None) -> str:
    from repro.experiments.fig9 import format_results, run_fig9, shape_checks

    tables = run_fig9(jobs=jobs)
    checks = shape_checks(tables)
    lines = [format_results(tables), "", "shape checks:"]
    lines += [f"  [{'ok' if ok else 'FAIL'}] {name}" for name, ok in checks.items()]
    return "\n".join(lines)


def _fleet(jobs=None) -> str:
    from repro.experiments.fleet import format_results, run_fleet_campaign
    from repro.fleet import InMemorySessionStore
    from repro.testing import ChaosInjector, FaultPlan, FaultSpec

    plan = FaultPlan(
        specs=[
            FaultSpec(kind="session_kill", match="rig-001", index=40),
            FaultSpec(kind="store_corrupt", match="rig-002", index=30),
            FaultSpec(kind="session_kill", match="rig-002", index=50),
            FaultSpec(kind="slow_consumer", match="rig-003", index=20, hang_s=8),
        ]
    )
    result = run_fleet_campaign(
        num_sessions=8,
        ticks=128,
        store=InMemorySessionStore(),
        injector=ChaosInjector(plan),
    )
    return format_results(result)


def _robustness(jobs=None) -> str:
    from repro.experiments.robustness import (
        format_results,
        run_robustness,
        shape_checks,
    )

    cells = run_robustness(jobs=jobs)
    checks = shape_checks(cells)
    lines = [format_results(cells), "", "shape checks:"]
    lines += [f"  [{'ok' if ok else 'FAIL'}] {name}" for name, ok in checks.items()]
    return "\n".join(lines)


ARTIFACTS: Dict[str, Callable[[], str]] = {
    "table1": _table1,
    "table2": _table2,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig8": _fig8,
    "table4": _table4,
    "fig9": _fig9,
    "robustness": _robustness,
    "fleet": _fleet,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which artifacts to regenerate ('all' for every one)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for campaign execution "
        "(default: REPRO_JOBS, else cpu_count - 1; 1 = serial)",
    )
    args = parser.parse_args(argv)

    names = sorted(ARTIFACTS) if "all" in args.artifacts else args.artifacts
    scale = current_scale()
    print(f"scale: {scale.name} (set REPRO_SCALE to change)\n")
    for name in names:
        with Stopwatch() as probe:
            print(f"=== {name} ===")
            print(ARTIFACTS[name](jobs=args.jobs))
        print(f"[{name} done in {probe.elapsed_s:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Service campaign driver: fleet campaigns replayed over the wire.

The over-the-wire twin of :func:`repro.experiments.fleet.run_fleet_campaign`:
spawn a worker pool sharing one sqlite session store, shard the sessions
across it through a :class:`~repro.service.ServiceFrontend`, and drive
the same deterministic telemetry streams tick by tick — optionally
SIGKILLing a worker mid-campaign to exercise session re-homing.  The
drive loop mirrors the in-process driver's cursor semantics exactly
(advance on accept, rewind to the checkpointed frame count on
kill/re-home, catch-up ticking until every stream finishes), which is
what makes the two comparable fingerprint for fingerprint: the
differential golden in ``tests/test_service.py`` asserts the decision
hash chains are byte-identical.

Streams are either the pure :func:`repro.experiments.fleet.frame_for`
synthetics or explicit per-session frame lists (e.g. a recorded
scenario-B run via :func:`repro.experiments.fleet.frames_from_trace`);
:func:`run_inprocess_reference` replays explicit streams through a local
:class:`~repro.fleet.FleetSupervisor` with the identical loop, producing
the baseline the service run is held to.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.thresholds import SafetyThresholds
from repro.experiments.fleet import (
    NOMINAL_THRESHOLDS,
    frame_for,
    session_id,
)
from repro.fleet import (
    FleetConfig,
    FleetSupervisor,
    SessionSpec,
    SessionStore,
    TelemetryFrame,
)
from repro.service.frontend import ServiceFrontend, connect_frontend
from repro.service.spawn import WorkerProcess, spawn_pool


@dataclass
class ServiceCampaignResult:
    """Outcome of one over-the-wire fleet campaign."""

    fingerprints: Dict[str, Dict[str, object]]
    ticks_run: int
    frames_sent: int = 0
    frames_rejected: int = 0
    #: Sessions re-homed after a worker death → frame count replayed from.
    rehomed: Dict[str, int] = field(default_factory=dict)
    lost: Dict[str, str] = field(default_factory=dict)
    quarantines: List[Tuple[str, str]] = field(default_factory=list)
    dead_workers: List[str] = field(default_factory=list)
    #: Session ids flushed by the final checkpoint-on-drain, per worker.
    drained: Dict[str, List[str]] = field(default_factory=dict)
    #: Worker placement at campaign end (session -> worker name).
    owners: Dict[str, str] = field(default_factory=dict)


def _make_specs(
    num_sessions: int, thresholds: Optional[SafetyThresholds]
) -> List[SessionSpec]:
    thresholds = thresholds if thresholds is not None else NOMINAL_THRESHOLDS
    return [
        SessionSpec(session_id=session_id(i), thresholds=thresholds)
        for i in range(num_sessions)
    ]


def run_service_campaign(
    store_path: str,
    num_sessions: int = 4,
    ticks: int = 64,
    seed: int = 0,
    workers: int = 2,
    fleet: Optional[FleetConfig] = None,
    thresholds: Optional[SafetyThresholds] = None,
    streams: Optional[Sequence[Sequence[TelemetryFrame]]] = None,
    kill_worker: Optional[Tuple[int, str]] = None,
    max_frame_bytes: Optional[int] = None,
) -> ServiceCampaignResult:
    """Run a deterministic fleet campaign through a spawned worker pool.

    With ``streams`` each session ``i`` replays ``streams[i]`` verbatim;
    otherwise session ``i`` streams :func:`frame_for`\\ ``(seed, i, ·)``
    for ``ticks`` frames, matching
    :func:`~repro.experiments.fleet.run_fleet_campaign`.
    ``kill_worker=(tick, name)`` SIGKILLs worker ``name`` right after
    that tick round; its sessions re-home onto the survivors and their
    telemetry cursors rewind to the checkpointed frame counts, exactly
    like the in-process ``session_kill`` chaos path.
    """
    if streams is not None:
        num_sessions = len(streams)
    specs = _make_specs(num_sessions, thresholds)
    pool = spawn_pool(
        workers,
        store_path,
        fleet_config=fleet,
        max_frame_bytes=max_frame_bytes,
    )
    try:
        return asyncio.run(
            _drive(pool, specs, ticks, seed, streams, kill_worker)
        )
    finally:
        for proc in pool:
            proc.stop(timeout=10.0)


async def _drive(
    pool: List[WorkerProcess],
    specs: List[SessionSpec],
    ticks: int,
    seed: int,
    streams: Optional[Sequence[Sequence[TelemetryFrame]]],
    kill_worker: Optional[Tuple[int, str]],
) -> ServiceCampaignResult:
    by_name = {proc.name: proc for proc in pool}
    frontend = await connect_frontend(
        {proc.name: proc.address for proc in pool}
    )
    result = ServiceCampaignResult(fingerprints={}, ticks_run=0)
    try:
        for spec in specs:
            await frontend.register(spec)

        index_of = {spec.session_id: i for i, spec in enumerate(specs)}
        cursor = {spec.session_id: 0 for spec in specs}
        blocked: set = set()

        def stream_len(sid: str) -> int:
            if streams is not None:
                return len(streams[index_of[sid]])
            return ticks

        def frame_at(sid: str, index: int) -> TelemetryFrame:
            if streams is not None:
                return streams[index_of[sid]][index]
            return frame_for(seed, index_of[sid], index)

        tick = 0
        while any(
            cursor[spec.session_id] < stream_len(spec.session_id)
            and spec.session_id not in blocked
            for spec in specs
        ):
            frames: Dict[str, TelemetryFrame] = {}
            for spec in specs:
                sid = spec.session_id
                if sid in blocked or cursor[sid] >= stream_len(sid):
                    continue
                frames[sid] = frame_at(sid, cursor[sid])
                result.frames_sent += 1
            outcome = await frontend.run_tick(tick, frames)
            result.ticks_run += 1
            for sid, accepted in outcome.accepted.items():
                if accepted:
                    cursor[sid] += 1
                else:
                    result.frames_rejected += 1
            for report in outcome.reports.values():
                for sid, reason in report["quarantined"]:
                    blocked.add(sid)
                    result.quarantines.append((sid, reason))
            # Everything a dead worker held since its last checkpoints is
            # gone; the streams replay from the checkpointed frame counts.
            for sid, replay_from in outcome.rewinds.items():
                cursor[sid] = replay_from
                result.rehomed[sid] = replay_from
            for sid, reason in outcome.lost.items():
                blocked.add(sid)
                result.lost[sid] = reason
            result.dead_workers.extend(outcome.dead_workers)
            if kill_worker is not None and tick == kill_worker[0]:
                victim = by_name[kill_worker[1]]
                victim.kill()
                victim.wait(timeout=10.0)
            tick += 1

        result.drained = await frontend.drain_all()
        result.fingerprints = await frontend.fingerprints()
        result.owners = dict(frontend.owners)
        return result
    finally:
        await frontend.close(shutdown_workers=True)


def run_inprocess_reference(
    streams: Sequence[Sequence[TelemetryFrame]],
    thresholds: Optional[SafetyThresholds] = None,
    fleet: Optional[FleetConfig] = None,
    store: Optional[SessionStore] = None,
) -> Dict[str, Dict[str, object]]:
    """Replay explicit streams through a local supervisor (the baseline).

    The same drive loop as :func:`run_service_campaign`, minus the
    network and the chaos: the returned fingerprints are what any
    service run of the same streams — across any number of workers,
    kills, and re-homings — must reproduce byte for byte.
    """
    supervisor = FleetSupervisor(store=store, config=fleet)
    specs = _make_specs(len(streams), thresholds)
    for spec in specs:
        supervisor.register(spec)
    index_of = {spec.session_id: i for i, spec in enumerate(specs)}
    cursor = {spec.session_id: 0 for spec in specs}
    tick = 0
    while any(
        cursor[spec.session_id] < len(streams[index_of[spec.session_id]])
        and not supervisor.sessions[spec.session_id].quarantined
        for spec in specs
    ):
        for spec in specs:
            sid = spec.session_id
            if supervisor.sessions[sid].quarantined:
                continue
            if cursor[sid] >= len(streams[index_of[sid]]):
                continue
            if supervisor.ingest(sid, streams[index_of[sid]][cursor[sid]]):
                cursor[sid] += 1
        supervisor.tick(tick)
        tick += 1
    supervisor.drain()
    return supervisor.fingerprints()


def format_service_results(result: ServiceCampaignResult) -> str:
    """Human-readable campaign summary (CLI + results artifact)."""
    lines = [
        f"sessions: {len(result.fingerprints)}",
        f"ticks run: {result.ticks_run}",
        f"frames sent: {result.frames_sent} "
        f"(rejected by backpressure: {result.frames_rejected})",
        f"workers killed: {len(result.dead_workers)} "
        f"({', '.join(result.dead_workers) or 'none'})",
        f"sessions re-homed: {len(result.rehomed)}",
        f"sessions lost: {len(result.lost)}",
        f"quarantines: {len(result.quarantines)}",
        "",
        f"{'session':<12} {'worker':<8} {'decisions':>9} {'health':>10}  digest",
    ]
    for sid in sorted(result.fingerprints):
        fp = result.fingerprints[sid]
        lines.append(
            f"{sid:<12} {result.owners.get(sid, '-'):<8} "
            f"{fp['decisions']:>9} {fp['health']:>10}  "
            f"{str(fp['digest'])[:16]}"
        )
    return "\n".join(lines)

"""Figure 8: dynamic-model validation — integrator comparison.

For each integrator (4th-order Runge-Kutta and explicit Euler, 1 ms step)
the model runs in parallel with the plant over several teleoperated runs
under identical control inputs; reported per integrator:

- average wall-clock time per model step (the paper: 0.032 ms RK4 vs
  0.011 ms Euler — both far inside the 1 ms budget);
- average absolute motor-position and joint-position errors per joint.

The paper's conclusion under test: Euler is ~3x cheaper with essentially
the same trajectory error, so it is the right choice for in-loop
estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.report import format_table
from repro.sim.runner import ModelValidationResult, run_model_validation


@dataclass
class Fig8Row:
    """Aggregated statistics for one integrator."""

    integrator: str
    mean_step_ms: float
    jpos_mae: np.ndarray
    mpos_mae: np.ndarray
    runs: int


def run_fig8(
    runs: int = 10,
    duration_s: float = 3.0,
    integrators: tuple = ("rk4", "euler"),
    base_seed: int = 60,
) -> List[Fig8Row]:
    """Run the model-validation comparison over ``runs`` runs each."""
    trajectories = ("circle", "suturing")
    rows = []
    for integrator in integrators:
        results: List[ModelValidationResult] = []
        for i in range(runs):
            results.append(
                run_model_validation(
                    integrator=integrator,
                    seed=base_seed + i,
                    duration_s=duration_s,
                    trajectory_name=trajectories[i % len(trajectories)],
                )
            )
        rows.append(
            Fig8Row(
                integrator=integrator,
                mean_step_ms=float(
                    np.mean([r.mean_step_seconds for r in results]) * 1e3
                ),
                jpos_mae=np.mean([r.jpos_mae for r in results], axis=0),
                mpos_mae=np.mean([r.mpos_mae for r in results], axis=0),
                runs=runs,
            )
        )
    return rows


def format_results(rows: List[Fig8Row]) -> str:
    """Figure 8-style table: time/step and per-joint errors."""
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r.integrator,
                f"{r.mean_step_ms:.4f}",
                f"{np.degrees(r.mpos_mae[0]):.2f}",
                f"{np.degrees(r.jpos_mae[0]):.3f}",
                f"{np.degrees(r.mpos_mae[1]):.2f}",
                f"{np.degrees(r.jpos_mae[1]):.3f}",
                f"{np.degrees(r.mpos_mae[2]):.2f}",
                f"{r.jpos_mae[2] * 1e3:.3f}",
            ]
        )
    table = format_table(
        [
            "integrator",
            "time/step (ms)",
            "J1 mpos (deg)",
            "J1 jpos (deg)",
            "J2 mpos (deg)",
            "J2 jpos (deg)",
            "J3 mpos (deg)",
            "J3 jpos (mm)",
        ],
        table_rows,
    )
    speedups: Dict[str, float] = {r.integrator: r.mean_step_ms for r in rows}
    lines = [table]
    if "euler" in speedups and "rk4" in speedups and speedups["euler"] > 0:
        lines.append(
            f"\nrk4/euler time ratio: {speedups['rk4'] / speedups['euler']:.2f}x "
            "(paper: 0.032/0.011 = 2.9x)"
        )
    return "\n".join(lines)

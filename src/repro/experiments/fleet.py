"""Fleet campaign driver: many rig sessions, chaos, crash recovery.

Drives a :class:`repro.fleet.FleetSupervisor` with deterministic
per-session telemetry streams so that two campaigns with the same seed —
or one campaign killed partway and resumed from its
:class:`repro.fleet.SessionStore` — can be compared fingerprint for
fingerprint.  Telemetry is a pure function of ``(seed, session, frame
index)``: smooth sinusoidal motor positions (they must pass the
supervisor's plausibility gate) with a periodic measurement dropout to
exercise coasting, so replaying frames after a crash regenerates exactly
the bytes the dead worker saw.

Recorded sim runs plug into the same machinery through
:func:`frames_from_trace`, which converts a
:meth:`repro.sim.RunTrace.detector_stream` into telemetry frames.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.thresholds import SafetyThresholds
from repro.fleet import (
    FleetConfig,
    FleetSupervisor,
    SessionSpec,
    SessionStore,
    TelemetryFrame,
    TickReport,
)

#: Wide-open nominal thresholds: campaign streams are benign, so the
#: interesting events are fleet-level (kills, quarantines), not alerts.
NOMINAL_THRESHOLDS = SafetyThresholds(
    motor_velocity=(50.0, 50.0, 50.0),
    motor_acceleration=(50000.0, 50000.0, 50000.0),
    joint_velocity=(5.0, 5.0, 5.0),
)

#: Every Nth frame of a stream carries no measurement (isolated coast
#: cycles, never enough in a row to trip the coast cap).
DROPOUT_EVERY = 17


def session_id(index: int) -> str:
    """Canonical campaign session id for session ``index``."""
    return f"rig-{index:03d}"


def frame_for(seed: int, session: int, index: int) -> TelemetryFrame:
    """The ``index``-th telemetry frame of one session's stream.

    A pure function — no RNG state — so a resumed campaign regenerates
    any frame a killed worker already consumed.  Motor positions follow a
    small per-session sinusoid (consecutive samples differ by far less
    than the supervisor's implausible-jump gate).
    """
    phase = 0.37 * session + 0.11 * seed
    angle = 0.008 * index + phase
    mpos: Optional[Tuple[float, float, float]] = (
        0.05 * math.sin(angle),
        0.05 * math.cos(angle),
        0.02 * math.sin(2.0 * angle),
    )
    if index % DROPOUT_EVERY == DROPOUT_EVERY - 1:
        mpos = None
    dac = tuple(100 + ((session * 31 + index * 7 + axis) % 50) for axis in range(3))
    return TelemetryFrame(tick=index, dac=dac, pedal_down=True, mpos=mpos)


def frames_from_trace(trace) -> List[TelemetryFrame]:
    """A recorded :class:`repro.sim.RunTrace` as fleet telemetry frames."""
    dac, mpos, pedal_down = trace.detector_stream()
    return [
        TelemetryFrame(
            tick=i,
            dac=tuple(int(v) for v in dac[i]),
            pedal_down=bool(pedal_down[i]),
            mpos=tuple(float(v) for v in mpos[i]),
        )
        for i in range(len(pedal_down))
    ]


@dataclass
class FleetCampaignResult:
    """Outcome of one fleet campaign (or one resumed leg of it)."""

    fingerprints: Dict[str, Dict[str, object]]
    ticks_run: int
    frames_sent: int = 0
    frames_rejected: int = 0
    kills: List[Tuple[str, int]] = field(default_factory=list)
    quarantines: List[Tuple[str, str]] = field(default_factory=list)
    checkpoints: int = 0
    supervisor: Optional[FleetSupervisor] = None


def run_fleet_campaign(
    num_sessions: int = 4,
    ticks: int = 64,
    seed: int = 0,
    store: Optional[SessionStore] = None,
    config: Optional[FleetConfig] = None,
    injector=None,
    resume: bool = False,
    on_tick: Optional[Callable[[int, TickReport], None]] = None,
    thresholds: Optional[SafetyThresholds] = None,
) -> FleetCampaignResult:
    """Run (or resume) a deterministic multi-session fleet campaign.

    Each session receives one frame per tick from its own pure stream
    (:func:`frame_for`).  With ``resume=True`` the sessions are restored
    from ``store`` instead of registered fresh: the stream cursor rewinds
    to each session's checkpointed ``frames_processed`` and ticking
    continues after the newest checkpoint, which is exactly the recovery
    protocol a killed worker's replacement follows.  ``session_kill``
    chaos faults mid-campaign take the same path in-process: the tick
    report says where the resumed session's cursor must rewind to.

    ``on_tick(tick, report)`` runs after every tick — the SIGKILL chaos
    test uses it to kill the campaign process at a chosen tick.
    """
    thresholds = thresholds if thresholds is not None else NOMINAL_THRESHOLDS
    fleet = FleetSupervisor(store=store, config=config, injector=injector)
    specs = [
        SessionSpec(session_id=session_id(i), thresholds=thresholds)
        for i in range(num_sessions)
    ]
    cursor: Dict[str, int] = {}
    start_tick = 0
    if resume:
        for spec in specs:
            session = fleet.resume(spec)
            cursor[spec.session_id] = session.frames_processed
            last = session.last_checkpoint_tick
            if last is not None:
                start_tick = max(start_tick, last + 1)
    else:
        for spec in specs:
            fleet.register(spec)
            cursor[spec.session_id] = 0

    result = FleetCampaignResult(
        fingerprints={}, ticks_run=0, supervisor=fleet
    )
    index_of = {spec.session_id: i for i, spec in enumerate(specs)}
    for tick in range(start_tick, ticks):
        for spec in specs:
            sid = spec.session_id
            if fleet.sessions[sid].quarantined:
                continue
            if cursor[sid] >= ticks:
                continue  # a resumed session replaying: stream is finite
            frame = frame_for(seed, index_of[sid], cursor[sid])
            result.frames_sent += 1
            if fleet.ingest(sid, frame):
                cursor[sid] += 1
            else:
                result.frames_rejected += 1
        report = fleet.tick(tick)
        result.ticks_run += 1
        result.kills.extend(report.killed)
        result.quarantines.extend(report.quarantined)
        result.checkpoints += len(report.checkpointed)
        for sid, resumed_at in report.killed:
            # Everything after the checkpoint died with the worker; the
            # stream replays from the checkpointed frame count.
            cursor[sid] = resumed_at
        if on_tick is not None:
            on_tick(tick, report)

    # Replayed sessions may still be behind the stream when the tick
    # budget runs out; keep ticking until every live cursor catches up so
    # a resumed campaign is comparable to an uninterrupted one.
    tick = ticks
    while any(
        cursor[spec.session_id] < ticks
        and not fleet.sessions[spec.session_id].quarantined
        for spec in specs
    ):
        for spec in specs:
            sid = spec.session_id
            if fleet.sessions[sid].quarantined or cursor[sid] >= ticks:
                continue
            frame = frame_for(seed, index_of[sid], cursor[sid])
            result.frames_sent += 1
            if fleet.ingest(sid, frame):
                cursor[sid] += 1
            else:
                result.frames_rejected += 1
        report = fleet.tick(tick)
        result.ticks_run += 1
        result.kills.extend(report.killed)
        result.quarantines.extend(report.quarantined)
        for sid, resumed_at in report.killed:
            cursor[sid] = resumed_at
        tick += 1

    result.fingerprints = fleet.fingerprints()
    return result


def format_results(result: FleetCampaignResult) -> str:
    """Human-readable campaign summary (CLI + results artifact)."""
    lines = [
        f"sessions: {len(result.fingerprints)}",
        f"ticks run: {result.ticks_run}",
        f"frames sent: {result.frames_sent} "
        f"(rejected by backpressure: {result.frames_rejected})",
        f"checkpoints written: {result.checkpoints}",
        f"session kills survived: {len(result.kills)}",
        f"quarantines: {len(result.quarantines)}",
        "",
        f"{'session':<12} {'decisions':>9} {'health':>10}  digest",
    ]
    for sid in sorted(result.fingerprints):
        fp = result.fingerprints[sid]
        lines.append(
            f"{sid:<12} {fp['decisions']:>9} {fp['health']:>10}  "
            f"{str(fp['digest'])[:16]}"
        )
    for sid, reason in result.quarantines:
        lines.append(f"quarantined {sid}: {reason}")
    return "\n".join(lines)

"""Table IV: detection performance of the dynamic-model detector vs RAVEN.

For each attack scenario, ACC / TPR / FPR / F1 of (a) the dynamic-model
anomaly detector and (b) the robot's built-in safety mechanisms, over the
campaign runs (injections at swept error values and activation periods,
plus fault-free runs).

Paper values for reference:

    scenario A: Dynamic Model 88.0 / 89.8 / 12.4 / 74.8
                RAVEN         84.6 / 53.3 /  7.7 / 57.8
    scenario B: Dynamic Model 92.0 / 99.8 / 11.8 / 89.1
                RAVEN         90.7 / 81.0 /  4.6 / 85.1

The shapes that must hold: the dynamic model's TPR is far above RAVEN's
(dramatically so for scenario A) at a moderately higher FPR, with average
accuracy around 90 %.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.attacks.campaign import CampaignResult
from repro.core.metrics import ConfusionMatrix
from repro.experiments.campaigns import get_both_campaigns
from repro.experiments.report import format_table

#: The paper's Table IV, for side-by-side reporting.
PAPER_TABLE4 = {
    ("A", "Dynamic Model"): (88.0, 89.8, 12.4, 74.8),
    ("A", "RAVEN"): (84.6, 53.3, 7.7, 57.8),
    ("B", "Dynamic Model"): (92.0, 99.8, 11.8, 89.1),
    ("B", "RAVEN"): (90.7, 81.0, 4.6, 85.1),
}


def run_table4(
    campaigns: Optional[Dict[str, CampaignResult]] = None,
    jobs: Optional[int] = None,
) -> List[tuple]:
    """(scenario, technique, ConfusionMatrix) rows for both scenarios.

    ``jobs`` sets the execution-engine worker count used when the
    campaigns are not cached yet (default: ``REPRO_JOBS``).
    """
    campaigns = campaigns or get_both_campaigns(jobs=jobs)
    rows = []
    for scenario in ("A", "B"):
        result = campaigns[scenario]
        rows.append((scenario, "Dynamic Model", result.confusion("model")))
        rows.append((scenario, "RAVEN", result.confusion("raven")))
    return rows


def format_results(rows: List[tuple]) -> str:
    """Table IV-style report with the paper's numbers alongside."""
    table_rows = []
    for scenario, technique, matrix in rows:
        paper = PAPER_TABLE4.get((scenario, technique))
        table_rows.append(
            [
                scenario,
                technique,
                f"{matrix.accuracy * 100:5.1f}",
                f"{matrix.tpr * 100:5.1f}",
                f"{matrix.fpr * 100:5.1f}",
                f"{matrix.f1 * 100:5.1f}",
                matrix.total,
                "" if paper is None else "/".join(f"{v:.1f}" for v in paper),
            ]
        )
    return format_table(
        ["scenario", "technique", "ACC", "TPR", "FPR", "F1", "runs", "paper ACC/TPR/FPR/F1"],
        table_rows,
    )


def average_accuracy(rows: List[tuple]) -> float:
    """Mean dynamic-model accuracy across scenarios (the paper's "90 %")."""
    accs = [
        matrix.accuracy
        for _scenario, technique, matrix in rows
        if technique == "Dynamic Model"
    ]
    return sum(accs) / len(accs) if accs else 0.0


def combined(rows: List[tuple], technique: str) -> ConfusionMatrix:
    """Pooled confusion matrix across scenarios for one technique."""
    total = ConfusionMatrix()
    for _scenario, tech, matrix in rows:
        if tech == technique:
            total = total + matrix
    return total

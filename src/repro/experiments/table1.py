"""Table I: attack variants on the robot control structure.

Runs one representative attack per Table I row and reports the observed
impact, which should match the paper's column:

- socket comm., change port          -> robot unresponsive / trajectory hold
- socket comm., change content       -> hijacked trajectory
- math library drift (sin/cos)       -> unwanted state (IK failure)
- PLC state corruption               -> homing failure
- motor command corruption (write)   -> abrupt jump / E-STOP
- encoder feedback corruption (read) -> abrupt jump / E-STOP
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.attacks.injection import ByteCorruptionInjection, build_scenario_b_library
from repro.attacks.malware import PedalDownTrigger
from repro.attacks.variants import (
    VariantOutcome,
    build_encoder_corruption_library,
    build_plc_state_corruption_library,
    build_socket_drop_library,
    build_socket_hijack_library,
    install_math_drift,
)
from repro.control.state_machine import RobotState
from repro.experiments.report import format_table
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.runner import run_fault_free


def _config(seed: int, duration_s: float) -> RigConfig:
    return RigConfig(seed=seed, duration_s=duration_s, trajectory_name="circle")


def run_table1(seed: int = 7, duration_s: float = 1.8) -> List[VariantOutcome]:
    """Execute every Table I variant and classify the outcome."""
    outcomes = []
    reference = run_fault_free(seed=seed, duration_s=duration_s)

    # --- socket: change port (datagrams lost) --------------------------------
    rig = SurgicalRig(_config(seed, duration_s),
                      preload_libraries=[build_socket_drop_library()])
    trace = rig.run()
    frozen = trace.pedal_down_fraction() == 0.0
    outcomes.append(
        VariantOutcome(
            variant="socket: change port",
            impact="robot never engages (teleoperation unavailable)"
            if frozen
            else "console commands lost",
            details=f"pedal-down fraction {trace.pedal_down_fraction():.2f}",
        )
    )

    # --- socket: change packet content (hijack) --------------------------------
    trigger = PedalDownTrigger.for_pedal_down(delay_cycles=300, duration_cycles=400)
    hijack = build_socket_hijack_library(
        trigger, hijack_dpos_m=np.array([8e-5, 0.0, 4e-5])
    )
    rig = SurgicalRig(_config(seed, duration_s), preload_libraries=[hijack])
    trace = rig.run()
    deviation = trace.max_deviation_from(reference)
    outcomes.append(
        VariantOutcome(
            variant="socket: change packet content",
            impact="hijacked trajectory"
            if deviation > 1e-3
            else "no effect",
            details=f"deviation from surgeon intent {deviation * 1e3:.1f} mm",
        )
    )

    # --- math library drift ---------------------------------------------------
    rig = SurgicalRig(_config(seed, duration_s))
    install_math_drift(rig, drift_per_call=3e-6)
    trace = rig.run()
    ik_failed = any("IK failure" in r for r in trace.estop_reasons)
    outcomes.append(
        VariantOutcome(
            variant="math: add drift to sin/cos",
            impact="unwanted state (IK failure -> E-STOP)"
            if ik_failed
            else (
                "trajectory drift"
                if trace.max_deviation_from(reference) > 1e-3
                else "no effect"
            ),
            details="; ".join(trace.estop_reasons[:1]),
        )
    )

    # --- PLC state corruption ---------------------------------------------------
    rig = SurgicalRig(
        _config(seed, duration_s),
        preload_libraries=[build_plc_state_corruption_library()],
    )
    trace = rig.run()
    never_ready = trace.pedal_down_fraction() == 0.0
    outcomes.append(
        VariantOutcome(
            variant="interface: change robot state in PLC",
            impact="homing failure (robot never becomes operational)"
            if never_ready
            else "initialization disturbed",
            details=f"PLC E-STOP: {rig.plc.estop_latched}",
        )
    )

    # --- motor command corruption (random byte) --------------------------------
    trigger = PedalDownTrigger.for_pedal_down(delay_cycles=300, duration_cycles=200)
    payload = ByteCorruptionInjection(np.random.default_rng(seed))
    rig = SurgicalRig(
        _config(seed, duration_s),
        preload_libraries=[build_scenario_b_library(trigger, payload)],
    )
    trace = rig.run()
    deviation = trace.max_deviation_from(reference)
    estopped = trace.estop_occurred()
    outcomes.append(
        VariantOutcome(
            variant="physical: change motor commands",
            impact=_jump_impact(deviation, estopped),
            details=f"deviation {deviation * 1e3:.1f} mm; "
            f"E-STOP {estopped}",
        )
    )

    # --- encoder feedback corruption ---------------------------------------------
    trigger = PedalDownTrigger.for_pedal_down(delay_cycles=300, duration_cycles=200)
    library = build_encoder_corruption_library(trigger, offset_counts=4000)
    rig = SurgicalRig(_config(seed, duration_s), preload_libraries=[library])
    trace = rig.run()
    deviation = trace.max_deviation_from(reference)
    estopped = trace.estop_occurred()
    outcomes.append(
        VariantOutcome(
            variant="physical: change encoder feedback",
            impact=_jump_impact(deviation, estopped),
            details=f"deviation {deviation * 1e3:.1f} mm; E-STOP {estopped}",
        )
    )
    return outcomes


def _jump_impact(deviation_m: float, estopped: bool) -> str:
    if deviation_m > 1e-3 and estopped:
        return "abrupt jump + unwanted state (E-STOP)"
    if deviation_m > 1e-3:
        return "abrupt jump"
    if estopped:
        return "unwanted state (E-STOP)"
    return "no physical effect"


def format_results(outcomes: List[VariantOutcome]) -> str:
    """Table I-style report."""
    return format_table(
        ["variant", "observed impact", "details"],
        [[o.variant, o.impact, o.details] for o in outcomes],
    )

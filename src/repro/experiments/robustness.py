"""Robustness sweep: detection quality under physical-layer degradation.

The paper evaluates the dynamic-model detector on a *healthy* testbed; this
experiment asks the question an in-situ deployment raises: how does the
detector behave when the rig itself degrades?  For each physical fault
class (:data:`FAULT_CLASSES`) and fault intensity, the sweep measures over
scenario-A and scenario-B attack campaigns:

- **detection probability** — fraction of attack runs with a detector
  alert at/after the attack's first active cycle;
- **detection latency** — mean command packets between attack start and
  the first alert, over detected runs;
- **false-positive rate** — alerts per evaluated packet over attack-free
  runs under the *same* fault plan (the zero-intensity column is the
  calibrated baseline: it must stay within 2x the paper's 0.1-0.2%
  per-packet target);
- **degraded-mode counters** — coasted cycles and supervisor E-STOP
  escalations, showing how much work the
  :class:`~repro.core.pipeline.GuardSupervisor` absorbed.

Faults start at :data:`FAULT_START_S` — after the robot engages and the
supervisor has a trusted measurement baseline, and before the attack
trigger fires — so every cell compares the same attack under increasingly
degraded physics.  Runs fan out over the shared process-pool engine; the
per-run fault plans are seeded, so the sweep is deterministic for a given
scale.

Run it with ``python -m repro.experiments robustness --jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.mitigation import MitigationStrategy
from repro.core.pipeline import GuardSupervisor, SupervisorConfig
from repro.core.thresholds import SafetyThresholds
from repro.experiments.calibration import get_thresholds
from repro.experiments.parallel import iter_tasks, resolve_jobs
from repro.experiments.report import format_table
from repro.experiments.scale import Scale, current_scale
from repro.sim.runner import (
    make_detector_guard,
    run_fault_free,
    run_scenario_a,
    run_scenario_b,
)
from repro.testing.physfaults import PhysFaultPlan

#: Fault classes swept, one plan (single spec) per class.
FAULT_CLASSES = (
    "encoder_dropout",
    "encoder_glitch",
    "dac_saturate",
    "packet_loss",
    "model_drift",
)

#: Faults engage here: after Pedal Down (~0.45 s) so the supervisor holds a
#: trusted baseline, before the attack trigger (~0.85 s) so every attack
#: runs under the degraded physics.
FAULT_START_S = 0.6

#: Attack strength per scenario: large enough that the healthy detector
#: catches essentially every run (Figure 9's saturated region), so any
#: drop in detection probability is attributable to the injected fault.
ATTACK_ERROR_A_MM = 1.0
ATTACK_ERROR_B_DAC = 26_000
ATTACK_PERIOD_MS = 64

#: Seed bases (disjoint from calibration/campaign ranges).
_ATTACK_SEED_BASE = 41_000
_FAULT_FREE_SEED_BASE = 47_000


def build_fault_plan(
    fault_class: str, intensity: float, seed: int
) -> PhysFaultPlan:
    """One-spec plan for a sweep cell (deterministic per run seed)."""
    return PhysFaultPlan.single(
        fault_class,
        intensity=intensity,
        seed=seed,
        start_s=FAULT_START_S,
    )


def _robustness_worker(task: dict) -> dict:
    """Process-pool entry point: one supervised run under one fault plan."""
    thresholds = SafetyThresholds.from_dict(task["thresholds"])
    guard = make_detector_guard(thresholds, strategy=MitigationStrategy.MONITOR)
    supervisor = GuardSupervisor(
        guard, SupervisorConfig.from_dict(task["supervisor"])
    )
    common = dict(
        duration_s=task["duration_s"],
        guard=supervisor,
        phys_faults=task["plan"],
    )
    attack_first: Optional[int] = None
    if task["kind"] == "fault_free":
        run_fault_free(seed=task["seed"], **common)
    elif task["scenario"] == "A":
        result = run_scenario_a(
            task["seed"],
            error_mm=ATTACK_ERROR_A_MM,
            period_ms=ATTACK_PERIOD_MS,
            **common,
        )
        attack_first = result.trace.attack_first_cycle
    else:
        result = run_scenario_b(
            task["seed"],
            error_dac=ATTACK_ERROR_B_DAC,
            period_ms=ATTACK_PERIOD_MS,
            **common,
        )
        attack_first = result.trace.attack_first_cycle

    stats = supervisor.stats
    # Only alerts at/after the attack's first active cycle count as
    # detection; earlier ones are fault-induced noise, not detection.
    # Both counters tick once per command packet, so they are comparable.
    post_attack_alerts = (
        [e.cycle for e in stats.alert_events if e.cycle >= attack_first]
        if attack_first is not None
        else []
    )
    return {
        "kind": task["kind"],
        "attack_fired": attack_first is not None,
        "detected": bool(post_attack_alerts),
        "latency_cycles": (
            post_attack_alerts[0] - attack_first if post_attack_alerts else None
        ),
        "alerts": stats.alerts,
        "packets_evaluated": stats.packets_evaluated,
        "packets_seen": stats.packets_seen,
        "coasted_cycles": stats.coasted_cycles,
        "stale_escalations": stats.stale_escalations,
    }


@dataclass
class RobustnessCell:
    """Aggregated metrics for one (fault class, intensity) cell."""

    fault_class: str
    intensity: float
    attack_runs: int
    detected_runs: int
    detection_prob: float
    mean_latency_cycles: Optional[float]
    false_positive_rate: float
    coasted_fraction: float
    stale_escalations: int


def _aggregate(
    fault_class: str, intensity: float, outcomes: List[dict]
) -> RobustnessCell:
    attacks = [o for o in outcomes if o["kind"] == "attack"]
    clean = [o for o in outcomes if o["kind"] == "fault_free"]
    detected = [o for o in attacks if o["detected"]]
    latencies = [
        o["latency_cycles"] for o in detected if o["latency_cycles"] is not None
    ]
    clean_evaluated = sum(o["packets_evaluated"] for o in clean)
    seen = sum(o["packets_seen"] for o in outcomes)
    return RobustnessCell(
        fault_class=fault_class,
        intensity=intensity,
        attack_runs=len(attacks),
        detected_runs=len(detected),
        detection_prob=len(detected) / len(attacks) if attacks else 0.0,
        mean_latency_cycles=(
            sum(latencies) / len(latencies) if latencies else None
        ),
        false_positive_rate=(
            sum(o["alerts"] for o in clean) / clean_evaluated
            if clean_evaluated
            else 0.0
        ),
        coasted_fraction=(
            sum(o["coasted_cycles"] for o in outcomes) / seen if seen else 0.0
        ),
        stale_escalations=sum(o["stale_escalations"] for o in outcomes),
    )


def run_robustness(
    scale: Optional[Scale] = None,
    jobs: Optional[int] = None,
    progress=None,
    supervisor: Optional[SupervisorConfig] = None,
    fault_classes: Tuple[str, ...] = FAULT_CLASSES,
) -> List[RobustnessCell]:
    """Sweep fault class x intensity; one cell per combination."""
    scale = scale or current_scale()
    jobs = resolve_jobs(jobs)
    thresholds = get_thresholds(scale, jobs=jobs).to_dict()
    supervisor_dict = (supervisor or SupervisorConfig()).to_dict()

    tasks: List[dict] = []
    keys: List[Tuple[str, float]] = []
    for fault_class in fault_classes:
        for intensity in scale.robustness_intensities:
            common = {
                "thresholds": thresholds,
                "supervisor": supervisor_dict,
                "duration_s": scale.robustness_duration_s,
            }
            for i in range(scale.robustness_seeds):
                for scenario in ("A", "B"):
                    seed = _ATTACK_SEED_BASE + i
                    tasks.append(
                        {
                            **common,
                            "kind": "attack",
                            "scenario": scenario,
                            "seed": seed,
                            "plan": build_fault_plan(
                                fault_class, intensity, seed
                            ).to_dict(),
                        }
                    )
                    keys.append((fault_class, intensity))
            for i in range(scale.robustness_fault_free_runs):
                seed = _FAULT_FREE_SEED_BASE + i
                tasks.append(
                    {
                        **common,
                        "kind": "fault_free",
                        "scenario": None,
                        "seed": seed,
                        "plan": build_fault_plan(
                            fault_class, intensity, seed
                        ).to_dict(),
                    }
                )
                keys.append((fault_class, intensity))

    grouped: Dict[Tuple[str, float], List[dict]] = {}
    results = iter_tasks(
        _robustness_worker,
        tasks,
        jobs=jobs,
        progress=progress,
        label="robustness sweep",
    )
    for key, outcome in zip(keys, results):
        grouped.setdefault(key, []).append(outcome)

    return [
        _aggregate(fault_class, intensity, grouped[(fault_class, intensity)])
        for fault_class in fault_classes
        for intensity in scale.robustness_intensities
    ]


def shape_checks(cells: List[RobustnessCell]) -> Dict[str, bool]:
    """Coarse invariants the sweep should satisfy at any scale.

    Detection probability may legitimately sit flat at 1.0 for fault
    classes the supervisor fully absorbs, so "degrades monotonically" is
    checked as *non-increasing within CI noise* — a tolerance sized for
    the small per-cell run counts of the smoke/default scales.
    """
    by_class: Dict[str, List[RobustnessCell]] = {}
    for cell in cells:
        by_class.setdefault(cell.fault_class, []).append(cell)

    checks: Dict[str, bool] = {}
    tolerance = 0.34  # one run of a 3-seed cell
    for fault_class, rows in by_class.items():
        rows = sorted(rows, key=lambda c: c.intensity)
        checks[f"{fault_class}: detection non-increasing with intensity"] = all(
            rows[i + 1].detection_prob <= rows[i].detection_prob + tolerance
            for i in range(len(rows) - 1)
        )
    baseline = [c for c in cells if c.intensity == 0.0]
    # 2x the paper's calibrated 0.1-0.2% per-packet false-alarm target.
    checks["baseline FPR <= 0.4% per packet"] = all(
        c.false_positive_rate <= 0.004 for c in baseline
    )
    checks["baseline detection probability >= 0.75"] = all(
        c.detection_prob >= 0.75 for c in baseline
    )
    return checks


def format_results(cells: List[RobustnessCell]) -> str:
    """Fixed-width table, one row per (fault class, intensity) cell."""
    headers = (
        "fault class",
        "intensity",
        "runs",
        "det.prob",
        "latency (pkts)",
        "FPR",
        "coast%",
        "stale E-STOPs",
    )
    rows = []
    for cell in cells:
        rows.append(
            (
                cell.fault_class,
                f"{cell.intensity:.2f}",
                cell.attack_runs,
                f"{cell.detection_prob:.2f}",
                (
                    f"{cell.mean_latency_cycles:.0f}"
                    if cell.mean_latency_cycles is not None
                    else "-"
                ),
                f"{cell.false_positive_rate * 100:.3f}%",
                f"{cell.coasted_fraction * 100:.1f}%",
                cell.stale_escalations,
            )
        )
    return format_table(headers, rows)

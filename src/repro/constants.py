"""Physical, protocol, and timing constants for the RAVEN II reproduction.

All values are in SI units unless stated otherwise.  Where the paper or the
public RAVEN II documentation gives a concrete value (1 ms control period,
18-byte USB packets, Byte 0 state encoding, MAXON RE40/RE30 motors) we use
it; remaining plant parameters are datasheet-plausible values tuned so that
the simulated robot reproduces the paper's qualitative behaviour (millimetre
jumps within milliseconds under torque injection, PID-corrected transients
for short injections).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------

#: Control-loop period of the RAVEN II software (seconds).  The paper states
#: a 1 millisecond operational cycle and real-time constraint.
CONTROL_PERIOD_S = 1e-3

#: Control-loop frequency (Hz).
CONTROL_RATE_HZ = 1.0 / CONTROL_PERIOD_S

#: Number of positioning degrees of freedom modelled dynamically.  The paper
#: models the first three (shoulder, elbow, insertion) of the seven DOF.
NUM_DOF = 3

#: Total degrees of freedom of one RAVEN II arm.
NUM_DOF_FULL = 7

# ---------------------------------------------------------------------------
# USB packet protocol (control software -> USB I/O board)
# ---------------------------------------------------------------------------

#: Size in bytes of one USB packet written by the control software to a USB
#: I/O board (Figure 5 of the paper shows 18 bytes).
USB_PACKET_SIZE = 18

#: Index of the byte carrying the robot operational state (Figure 5/6).
USB_STATE_BYTE = 0

#: Bit (0-indexed) of Byte 0 that carries the square-wave watchdog signal.
#: The paper identifies "the fifth bit" toggling 0x0F <-> 0x1F, i.e. bit 4.
USB_WATCHDOG_BIT = 4

#: Byte 0 low-nibble values for each operational state.  With the watchdog
#: bit cleared, Byte 0 takes one of four values corresponding to the four
#: states of Figure 1(c); with the watchdog toggling, eight raw values are
#: observed (e.g. 0x0F and 0x1F both mean "Pedal Down").
STATE_BYTE_ESTOP = 0x00
STATE_BYTE_INIT = 0x03
STATE_BYTE_PEDAL_UP = 0x07
STATE_BYTE_PEDAL_DOWN = 0x0F

#: Offset of the first DAC command in the USB packet.  Each of the up to 8
#: channels is a 16-bit signed big-endian value; we use channels 0..2 for the
#: three modelled motors.
USB_DAC_OFFSET = 1

#: Number of DAC channels carried by one packet.
USB_NUM_CHANNELS = 8

#: Trailing checksum byte offset (sum-of-bytes modulo 256).  The USB board
#: does NOT verify it — this is the integrity vulnerability the paper
#: exploits ("the integrity of the packets is not checked after the USB
#: boards receive them").
USB_CHECKSUM_OFFSET = USB_PACKET_SIZE - 1

# ---------------------------------------------------------------------------
# DAC / motor-controller interface
# ---------------------------------------------------------------------------

#: DAC full-scale count (16-bit signed).
DAC_FULL_SCALE = 32767

#: Motor-controller current at DAC full scale (amperes).
DAC_FULL_SCALE_CURRENT_A = 6.0

#: Software safety-check limit on the magnitude of DAC commands, in counts.
#: The RAVEN software compares each DAC command against a fixed threshold
#: before the USB write.  (The physical RAVEN limits motor current; we pick
#: a limit well inside full scale so malicious values can pass under it,
#: and far enough above normal PID demands that mid-size disturbances do
#: not trip it — the blind spot Table IV quantifies.)
DAC_SAFETY_LIMIT = 24000

#: Half-period of the software watchdog square wave, in control cycles:
#: the "I'm alive" bit in USB Byte 0 toggles every this many cycles while
#: the software believes the system is healthy.
WATCHDOG_HALF_PERIOD_CYCLES = 8

#: Seconds for the fail-safe power-off brakes to fully clamp after an
#: engage request.  While the brakes close the motors are unpowered but
#: the arm coasts under friction — which is how an abrupt jump can
#: complete even after the PLC reacts.
BRAKE_ENGAGE_DELAY_S = 0.05

# ---------------------------------------------------------------------------
# Encoders
# ---------------------------------------------------------------------------

#: Encoder counts per motor-shaft revolution (quadrature-decoded).
ENCODER_COUNTS_PER_REV = 4000

# ---------------------------------------------------------------------------
# Safety thresholds (paper, Section IV.C)
# ---------------------------------------------------------------------------

#: The detection goal: an unsafe jump of more than 1 millimetre of the
#: end-effector within 1-2 milliseconds (based on expert surgeon feedback).
UNSAFE_JUMP_M = 1e-3

#: Window over which the unsafe jump is assessed (seconds).
UNSAFE_JUMP_WINDOW_S = 2e-3

#: Percentile band used for threshold learning over fault-free runs.
THRESHOLD_PERCENTILE_LO = 99.8
THRESHOLD_PERCENTILE_HI = 99.9

#: Number of fault-free runs the paper uses for threshold learning.
THRESHOLD_TRAINING_RUNS = 600

# ---------------------------------------------------------------------------
# ITP (Interoperable Teleoperation Protocol) over UDP
# ---------------------------------------------------------------------------

#: Default UDP port of the RAVEN control software ITP listener.
ITP_DEFAULT_PORT = 36000

#: ITP packet size in bytes (sequence, pedal, mode, 3x position increment,
#: 4x orientation quaternion increment, checksum) — see repro.teleop.itp.
ITP_PACKET_SIZE = 40

#: Maximum magnitude of a single incremental position command (metres).  The
#: control software rejects ITP packets whose increments exceed this value.
ITP_MAX_INCREMENT_M = 5e-4

# ---------------------------------------------------------------------------
# Workspace and joint limits (one arm; simplified RAVEN geometry)
# ---------------------------------------------------------------------------

#: (min, max) for shoulder joint, radians.
JOINT1_LIMITS_RAD = (-1.2, 1.2)

#: (min, max) for elbow joint, radians.  The elbow stays flexed to one
#: side: q2 = 0 puts the tool axis on the boundary of the mechanism's
#: reachable cone (alpha1 + alpha2), which is a kinematic singularity.
JOINT2_LIMITS_RAD = (0.3, 2.8)

#: (min, max) for tool insertion, metres (distance along tool axis).
JOINT3_LIMITS_M = (0.05, 0.30)

#: Nominal insertion depth used as the neutral pose (metres).
JOINT3_NEUTRAL_M = 0.15

"""Golden-trace differential regression suite.

Small canonical simulation traces (fault-free + scenario A/B) and a tiny
campaign are pinned as byte-exact fingerprints under ``tests/golden/``.
The suite asserts three invariants at once:

- **code drift** — today's Euler simulator reproduces the recorded bytes
  (and, because the goldens are committed, Euler matches itself across
  platforms and checkouts);
- **serial vs parallel** — the process-pool engine produces the same
  bytes as the in-process loop;
- **fresh vs resumed** — a campaign interrupted by an injected fault and
  resumed from its shards produces the same bytes as an undisturbed run.

Re-record with ``pytest --update-golden`` and commit the diff — a golden
change *is* a results change and should be reviewed as one.
"""

from __future__ import annotations

import pytest

from repro.attacks.campaign import CampaignRunner, ParallelCampaignRunner
from repro.errors import TaskExecutionError
from repro.experiments.campaigns import get_campaign
from repro.experiments.scale import Scale
from repro.sim.batch import BatchedSurgicalRig, LaneSpec
from repro.sim.rig import RigConfig
from repro.sim.runner import (
    _finalize,
    run_fault_free,
    run_scenario_a,
    run_scenario_b,
    scenario_a_lane,
    scenario_b_lane,
)
from repro.testing import ChaosInjector, FaultPlan, FaultSpec, campaign_fingerprint
from repro.testing.faults import ALWAYS

pytestmark = pytest.mark.golden

TINY = Scale(
    name="tiny-golden",
    training_runs=1,
    training_duration_s=0.7,
    errors_a_mm=(0.1,),
    errors_b_dac=(26000,),
    periods_ms=(16, 64),
    repetitions=1,
    fault_free_runs=1,
    run_duration_s=0.7,
    validation_runs=1,
    validation_duration_s=0.7,
    syscall_samples=10,
    capture_runs=1,
    capture_duration_s=0.7,
)


class TestTraceGoldens:
    """Single-run traces: the simulator's bytes, pinned."""

    def test_fault_free_euler(self, golden):
        trace = run_fault_free(seed=3, duration_s=0.7)
        golden.check("trace_fault_free_euler", trace.fingerprint())

    def test_fault_free_replay_is_bit_identical(self):
        # The determinism the whole suite rests on: same seed, same bytes.
        a = run_fault_free(seed=3, duration_s=0.7).fingerprint()
        b = run_fault_free(seed=3, duration_s=0.7).fingerprint()
        assert a == b

    def test_telemetry_enabled_matches_the_same_golden(
        self, golden, monkeypatch, tmp_path
    ):
        # REPRO_OBS is observation-only by contract: with telemetry on,
        # the run must still reproduce the pinned disabled-mode bytes.
        from repro.obs.runtime import reset_runtime

        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        reset_runtime()
        try:
            trace = run_fault_free(seed=3, duration_s=0.7)
        finally:
            reset_runtime()
        golden.check("trace_fault_free_euler", trace.fingerprint())

    def test_scenario_a(self, golden):
        result = run_scenario_a(
            seed=5, error_mm=0.5, period_ms=16, duration_s=0.7,
            raven_safety_enabled=False,
        )
        golden.check("trace_scenario_a", result.trace.fingerprint())

    def test_scenario_b(self, golden):
        result = run_scenario_b(
            seed=5, error_dac=26000, period_ms=16, duration_s=0.7,
            raven_safety_enabled=False,
        )
        golden.check("trace_scenario_b", result.trace.fingerprint())


@pytest.mark.batch
class TestBatchedGoldens:
    """Batched execution reproduces the *same* pinned goldens.

    The three canonical single-run traces above run again — this time as
    three lanes of one :class:`BatchedSurgicalRig` — and must hit the
    identical recorded fingerprints.  No new golden files: serial,
    parallel and batched execution all pin to the same bytes.
    """

    def test_batched_lanes_match_scalar_goldens(self, golden):
        ff_spec = LaneSpec(
            RigConfig(seed=3, duration_s=0.7, trajectory_name="circle")
        )
        a_spec, a_trig, a_rec = scenario_a_lane(
            seed=5, error_mm=0.5, period_ms=16, duration_s=0.7,
            raven_safety_enabled=False,
        )
        b_spec, b_trig, b_rec = scenario_b_lane(
            seed=5, error_dac=26000, period_ms=16, duration_s=0.7,
            raven_safety_enabled=False,
        )
        traces = BatchedSurgicalRig([ff_spec, a_spec, b_spec]).run()
        _finalize(traces[1], a_trig, a_rec)
        _finalize(traces[2], b_trig, b_rec)
        golden.check("trace_fault_free_euler", traces[0].fingerprint())
        golden.check("trace_scenario_a", traces[1].fingerprint())
        golden.check("trace_scenario_b", traces[2].fingerprint())

    def test_batched_replay_is_bit_identical(self):
        def fingerprints():
            specs = [
                LaneSpec(RigConfig(seed=3, duration_s=0.7)),
                LaneSpec(RigConfig(seed=4, duration_s=0.7)),
            ]
            return [t.fingerprint() for t in BatchedSurgicalRig(specs).run()]

        assert fingerprints() == fingerprints()


@pytest.mark.campaign
class TestCampaignGoldens:
    """Campaign outcomes: serial, parallel, and resumed must all match
    the same recorded fingerprint."""

    GRID = dict(scenario="B", error_values=[26000], periods_ms=[16, 64])

    def test_serial_campaign(self, golden, loose_thresholds):
        result = CampaignRunner(loose_thresholds, duration_s=0.7).run_campaign(
            **self.GRID, repetitions=1, fault_free_runs=1
        )
        golden.check("campaign_b_serial", campaign_fingerprint(result))

    def test_parallel_campaign_matches_serial_golden(
        self, golden, loose_thresholds
    ):
        result = ParallelCampaignRunner(
            loose_thresholds, duration_s=0.7, jobs=2
        ).run_campaign(**self.GRID, repetitions=1, fault_free_runs=1)
        golden.check("campaign_b_serial", campaign_fingerprint(result))

    def test_fresh_and_resumed_campaign_match_golden(self, golden, tmp_path):
        # Fresh, undisturbed run (trains thresholds, caches shards).
        fresh = get_campaign("B", TINY, cache_dir=tmp_path / "fresh", jobs=1)
        fingerprint = campaign_fingerprint(fresh)
        golden.check("campaign_b_cached", fingerprint)

        # Interrupted run: an unrecoverable injected fault kills it after
        # the first cell checkpoints ...
        injector = ChaosInjector(
            FaultPlan([FaultSpec(kind="raise", index=1, times=ALWAYS)])
        )
        interrupted_dir = tmp_path / "resumed"
        with pytest.raises(TaskExecutionError):
            get_campaign(
                "B", TINY, cache_dir=interrupted_dir, jobs=1,
                injector=injector,
            )
        # ... and the resume completes bit-identically to the golden.
        resumed = get_campaign("B", TINY, cache_dir=interrupted_dir, jobs=1)
        assert campaign_fingerprint(resumed) == fingerprint
        golden.check("campaign_b_cached", campaign_fingerprint(resumed))


# ---------------------------------------------------------------------------
# Fleet goldens: SIGKILL a fleet worker mid-campaign, resume from the
# session store, and the per-session fingerprints must equal the
# uninterrupted run's pinned bytes.
# ---------------------------------------------------------------------------

_FLEET_SESSIONS = 3
_FLEET_TICKS = 48
_FLEET_SEED = 11
_FLEET_KILL_TICK = 23


def _fleet_config():
    from repro.fleet import FleetConfig

    return FleetConfig(checkpoint_every=8)


def _fleet_worker(db_path: str) -> None:
    """Child-process half of the crash test: dies mid-campaign, hard.

    Module-level (not a closure) so it survives pickling under any
    multiprocessing start method.
    """
    import os
    import signal

    from repro.experiments.fleet import run_fleet_campaign
    from repro.fleet import SqliteSessionStore

    def kill_self(tick, report):
        if tick == _FLEET_KILL_TICK:
            os.kill(os.getpid(), signal.SIGKILL)

    run_fleet_campaign(
        num_sessions=_FLEET_SESSIONS,
        ticks=_FLEET_TICKS,
        seed=_FLEET_SEED,
        store=SqliteSessionStore(db_path),
        config=_fleet_config(),
        on_tick=kill_self,
    )


@pytest.mark.fleet
class TestFleetGoldens:
    """Fleet supervisor: uninterrupted, killed-and-resumed, both pinned."""

    def _run(self, **kwargs):
        from repro.experiments.fleet import run_fleet_campaign

        return run_fleet_campaign(
            num_sessions=_FLEET_SESSIONS,
            ticks=_FLEET_TICKS,
            seed=_FLEET_SEED,
            config=_fleet_config(),
            **kwargs,
        )

    def test_fleet_campaign_golden(self, golden):
        golden.check("fleet_campaign", self._run().fingerprints)

    def test_fleet_campaign_replay_is_bit_identical(self):
        assert self._run().fingerprints == self._run().fingerprints

    def test_sigkilled_worker_resumes_to_the_same_golden(self, golden, tmp_path):
        import multiprocessing

        from repro.fleet import SqliteSessionStore

        db_path = str(tmp_path / "fleet.sqlite")
        ctx = multiprocessing.get_context("spawn")
        worker = ctx.Process(target=_fleet_worker, args=(db_path,))
        worker.start()
        worker.join(timeout=120)
        assert worker.exitcode == -9, "worker should die by SIGKILL mid-campaign"

        # The replacement worker resumes every session from its newest
        # checkpoint, replays the lost frames, and finishes the campaign.
        resumed = self._run(store=SqliteSessionStore(db_path), resume=True)
        assert resumed.ticks_run < _FLEET_TICKS  # picked up mid-flight
        golden.check("fleet_campaign", resumed.fingerprints)

"""Tests for the repro.analysis lint engine, rules, CLI, and baseline."""

from __future__ import annotations

import dataclasses
import json
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisEngine,
    DEFAULT_CONFIG,
    PARSE_ERROR_RULE,
    load_baseline,
    partition,
    save_baseline,
)
from repro.analysis.__main__ import main
from repro.analysis.suppress import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_ROOT = REPO_ROOT / "tests" / "analysis_fixtures"

#: Fixture-scoped config: the allowlists point at the fixture packages
#: instead of the real pipeline so badpkg violates every rule on purpose.
FIXTURE_CONFIG = dataclasses.replace(
    DEFAULT_CONFIG,
    dac_sink_allowed_modules=(),
    guard_hook_allowed_modules=(),
    deterministic_packages=(
        "tests.analysis_fixtures.badpkg.jittery",
        "tests.analysis_fixtures.badpkg.batch",
        "tests.analysis_fixtures.badpkg.fleetops",
        "tests.analysis_fixtures.goodpkg",
    ),
    constants_scope=(
        "tests.analysis_fixtures.badpkg.tuning",
        "tests.analysis_fixtures.goodpkg",
    ),
)


def run_fixture(*names: str, config=FIXTURE_CONFIG):
    engine = AnalysisEngine(config=config)
    paths = [FIXTURE_ROOT / name for name in names]
    return engine.analyze_paths(paths, display_root=REPO_ROOT)


def rule_lines(findings):
    return sorted((f.rule_id, f.line) for f in findings)


# ---------------------------------------------------------------------------
# Rule families over the fixture packages — exact ids and lines
# ---------------------------------------------------------------------------


def test_rpr001_guard_bypass_fixture():
    result = run_fixture("badpkg/actuation.py")
    assert rule_lines(result.findings) == [
        ("RPR001", 13),  # self.board.guard = handler
        ("RPR001", 16),  # self.board._latch(values)
        ("RPR001", 28),  # packet.dac_values[0] = 32767 after guard check
        ("RPR001", 33),  # data = list(data) after guard check
        ("RPR001", 38),  # setattr(board, "guard", handler)
    ]
    assert not result.suppressed


def test_rpr002_determinism_fixture():
    result = run_fixture("badpkg/jittery.py")
    assert rule_lines(result.findings) == [
        ("RPR002", 14),  # time.time()
        ("RPR002", 18),  # datetime.datetime.now()
        ("RPR002", 22),  # np.random.rand(3)
        ("RPR002", 26),  # random.random()
        ("RPR002", 30),  # os.environ.get(...)
        ("RPR002", 34),  # lambda handed to iter_tasks
        ("RPR002", 38),  # bare time.perf_counter() outside repro.obs.timing
    ]


def test_rpr003_magic_numbers_fixture():
    result = run_fixture("badpkg/tuning.py")
    assert rule_lines(result.findings) == [
        ("RPR003", 16),  # 42.5 threshold in function logic
        ("RPR003", 17),  # 9000 scale factor
    ]
    # Module constants, dataclass defaults (incl. default_factory lambda),
    # and subscript indices are all allowed — nothing else fires.


def test_rpr004_pool_safety_fixture():
    result = run_fixture("badpkg/poolwork.py")
    assert rule_lines(result.findings) == [
        ("RPR004", 12),  # nested def
        ("RPR004", 17),  # locally bound lambda
        ("RPR004", 21),  # inline lambda (module outside RPR002 scope)
        ("RPR004", 28),  # functools.partial over a nested def
    ]


@pytest.mark.batch
def test_batch_fixture_carries_rpr002_and_rpr004():
    """A ``*.batch`` module inside the deterministic scope fires both
    rule families — vectorization is not an escape hatch from the
    determinism and pool-safety contracts."""
    result = run_fixture("badpkg/batch.py")
    assert rule_lines(result.findings) == [
        ("RPR002", 10),  # global RNG inside the batch kernel
        ("RPR004", 17),  # nested worker submitted to the pool
    ]


@pytest.mark.fleet
def test_fleet_fixture_carries_rpr002_and_rpr004():
    """A fleet-layer module inside the deterministic scope fires both
    rule families — session checkpoints and decision chains are pinned
    bytes, so wall clocks, raw env reads, and unpicklable pool workers
    are all contract violations there."""
    result = run_fixture("badpkg/fleetops.py")
    assert rule_lines(result.findings) == [
        ("RPR002", 12),  # time.time() stamped into a checkpoint
        ("RPR002", 16),  # raw os.environ read outside repro.envcfg
        ("RPR004", 23),  # nested worker submitted to the pool
    ]


def test_clean_fixture_has_no_findings():
    result = run_fixture("goodpkg/clean.py")
    assert result.findings == []
    assert result.suppressed == []


def test_inline_suppressions_waive_findings():
    result = run_fixture("goodpkg/waived.py")
    assert result.findings == []
    assert rule_lines(result.suppressed) == [
        ("RPR001", 17),  # allow[*] on the direct sink call
        ("RPR002", 9),  # allow[RPR002] on time.time()
        ("RPR002", 13),  # allow[RPR002, RPR004] on the pool lambda
    ]


def test_suppression_comment_only_covers_its_own_line():
    lines = [
        "x = time.time()  # repro: allow[RPR002]",
        "y = time.time()",
        "z = 1  # repro: allow[RPR001,RPR003]",
        "w = 2  # repro: allow[*]",
    ]
    supp = parse_suppressions(lines)
    assert supp[1] == frozenset({"RPR002"})
    assert 2 not in supp
    assert supp[3] == frozenset({"RPR001", "RPR003"})
    assert supp[4] == frozenset({"*"})


# ---------------------------------------------------------------------------
# Scratch reintroduction: the acceptance scenario from the fault model
# ---------------------------------------------------------------------------


def test_reintroduced_post_guard_mutation_is_caught(tmp_path):
    """Deliberately reopening the TOCTOU window in scratch code fires RPR001."""
    scratch = tmp_path / "scratch_pipeline.py"
    scratch.write_text(
        textwrap.dedent(
            """
            class Injector:
                def __init__(self, board, guard):
                    self.board = board
                    self.guard = guard

                def deliver(self, packet):
                    verdict = self.guard(packet)
                    if verdict:
                        packet.dac_values[1] = -32768
                        self.board.fd_write(packet)
            """
        )
    )
    engine = AnalysisEngine()
    result = engine.analyze_paths([scratch], display_root=tmp_path)
    assert [(f.rule_id, f.line) for f in result.findings] == [("RPR001", 10)]
    assert "TOCTOU" in result.findings[0].message


def test_parse_error_yields_rpr000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    engine = AnalysisEngine()
    result = engine.analyze_paths([bad], display_root=tmp_path)
    assert result.findings == []
    assert [f.rule_id for f in result.parse_errors] == [PARSE_ERROR_RULE]
    assert result.active[0].rule_id == PARSE_ERROR_RULE


@pytest.mark.skipif(
    sys.version_info < (3, 11), reason="except* requires Python 3.11"
)
def test_violations_inside_trystar_blocks_are_found(tmp_path):
    scratch = tmp_path / "star.py"
    scratch.write_text(
        textwrap.dedent(
            """
            def emergency(board, values):
                try:
                    board.fd_write(values)
                except* ValueError:
                    board._latch(values)
            """
        )
    )
    engine = AnalysisEngine()
    result = engine.analyze_paths([scratch], display_root=tmp_path)
    assert [(f.rule_id, f.line) for f in result.findings] == [("RPR001", 6)]


# ---------------------------------------------------------------------------
# Fingerprints and the baseline mechanism
# ---------------------------------------------------------------------------


def test_fingerprint_survives_line_shift(tmp_path):
    src_a = "def f(board, v):\n    board._latch(v)\n"
    src_b = "\n\n\ndef f(board, v):\n    board._latch(v)\n"
    engine = AnalysisEngine()
    (tmp_path / "a.py").write_text(src_a)
    (tmp_path / "b.py").write_text(src_b)
    res_a = engine.analyze_paths([tmp_path / "a.py"], display_root=tmp_path)
    res_b = engine.analyze_paths([tmp_path / "b.py"], display_root=tmp_path)
    (fa,) = res_a.findings
    (fb,) = res_b.findings
    assert fa.line != fb.line
    # Same rule, same module stem difference... fingerprints hash
    # rule|module|source, so same-named modules would match. Here the
    # module names differ, so fingerprints differ:
    assert fa.fingerprint != fb.fingerprint
    # But an identical file shifted in place keeps its fingerprint:
    (tmp_path / "a.py").write_text(src_b)
    res_shifted = engine.analyze_paths(
        [tmp_path / "a.py"], display_root=tmp_path
    )
    (fs,) = res_shifted.findings
    assert fs.line != fa.line
    assert fs.fingerprint == fa.fingerprint


def test_baseline_roundtrip_and_partition(tmp_path):
    result = run_fixture("badpkg")
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, result.findings)
    baseline = load_baseline(baseline_path)
    new, grandfathered = partition(result.findings, baseline)
    assert new == []
    assert len(grandfathered) == len(result.findings)

    # Fixing one finding shrinks the allowance; the rest still match.
    trimmed = result.findings[1:]
    new, grandfathered = partition(trimmed, baseline)
    assert new == []
    assert len(grandfathered) == len(trimmed)

    # A brand-new finding is not absorbed.
    new, _ = partition(result.findings, load_baseline(tmp_path / "none.json"))
    assert len(new) == len(result.findings)


def test_baseline_counts_are_a_multiset(tmp_path):
    result = run_fixture("badpkg/actuation.py")
    duplicated = result.findings + [result.findings[0]]
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, result.findings)
    new, grandfathered = partition(duplicated, load_baseline(baseline_path))
    assert len(new) == 1
    assert len(grandfathered) == len(result.findings)


# ---------------------------------------------------------------------------
# CLI behavior
# ---------------------------------------------------------------------------


def test_cli_check_fails_then_baseline_update_clears(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    fixture = str(FIXTURE_ROOT / "badpkg")

    code = main([fixture, "--check", "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 1
    assert "RPR001" in out

    assert main([fixture, "--baseline-update", "--baseline", str(baseline)]) == 0
    capsys.readouterr()

    code = main([fixture, "--check", "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 new finding(s)" in out


def test_cli_json_report(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = main(
        [str(FIXTURE_ROOT / "badpkg"), "--json", "--baseline", str(baseline)]
    )
    assert code == 0  # no --check: report-only mode always exits 0
    payload = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in payload["new"]} >= {"RPR001", "RPR004"}
    assert payload["parse_errors"] == []
    for finding in payload["new"]:
        assert set(finding) == {
            "rule",
            "path",
            "module",
            "line",
            "col",
            "message",
            "source",
            "fingerprint",
        }


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004"):
        assert rule_id in out


def test_cli_missing_path_is_a_usage_error(capsys):
    assert main(["definitely/not/a/path"]) == 2


def test_cli_parse_errors_are_never_baselined(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    baseline = tmp_path / "baseline.json"
    # --baseline-update refuses to launder a parse error into the baseline.
    assert main([str(bad), "--baseline-update", "--baseline", str(baseline)]) == 1
    capsys.readouterr()
    assert main([str(bad), "--check", "--baseline", str(baseline)]) == 1


def test_cli_rejects_corrupt_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"version": 99}')
    code = main([str(FIXTURE_ROOT / "goodpkg"), "--baseline", str(baseline)])
    assert code == 2
    assert "unsupported layout" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# The real tree stays clean
# ---------------------------------------------------------------------------


def test_src_tree_is_clean_under_default_config():
    engine = AnalysisEngine()
    result = engine.analyze_paths([REPO_ROOT / "src"], display_root=REPO_ROOT)
    assert result.parse_errors == []
    baseline = load_baseline(REPO_ROOT / "analysis_baseline.json")
    new, _ = partition(result.findings, baseline)
    assert new == [], "\n".join(f.format() for f in new)


@pytest.mark.batch
def test_batch_modules_are_in_the_deterministic_scope():
    """The batched execution layer carries the same bit-identity promise
    as the scalar path, so RPR002 (determinism) and the RPR004 lambda
    carve-out must cover every ``*.batch`` module."""
    from repro.analysis.config import module_matches

    for module in (
        "repro.dynamics.batch",
        "repro.sim.batch",
        "repro.experiments.batch",
        "repro.core.dynamic_model",
        "repro.core.estimator",
        "repro.core.detector",
        "repro.fleet",
        "repro.fleet.supervisor",
        "repro.fleet.store",
        "repro.fleet.session",
        "repro.service",
        "repro.service.protocol",
        "repro.service.worker",
        "repro.service.frontend",
    ):
        assert module_matches(module, DEFAULT_CONFIG.deterministic_packages), (
            f"{module} must stay under RPR002's deterministic scope"
        )
    # The service boundary also carries the fleet's quarantine
    # discipline: swallowed connection faults are RPR008 findings.
    for module in ("repro.service", "repro.service.worker"):
        assert module_matches(module, DEFAULT_CONFIG.quarantine_scope), (
            f"{module} must stay under RPR008's quarantine scope"
        )


def test_engine_is_deterministic_across_runs():
    first = run_fixture("badpkg")
    second = run_fixture("badpkg")
    assert [f.to_dict() for f in first.findings] == [
        f.to_dict() for f in second.findings
    ]

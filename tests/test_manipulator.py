"""Tests for repro.dynamics.manipulator."""

import numpy as np
import pytest

from repro.dynamics.friction import FrictionModel
from repro.dynamics.manipulator import (
    GRAVITY,
    ManipulatorDynamics,
    ManipulatorParameters,
    _solve3,
)
from tests.conftest import random_joint_vector


class TestParameters:
    def test_defaults_valid(self):
        ManipulatorParameters()

    def test_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            ManipulatorParameters(instrument_mass=-0.1)

    def test_wrong_inertia_shape_rejected(self):
        with pytest.raises(ValueError):
            ManipulatorParameters(base_inertias=np.array([1.0, 2.0]))

    def test_scaled(self):
        p = ManipulatorParameters().scaled(1.5)
        base = ManipulatorParameters()
        assert p.instrument_mass == pytest.approx(1.5 * base.instrument_mass)
        assert np.allclose(p.base_inertias, 1.5 * base.base_inertias)
        assert p.link2_com_radius == base.link2_com_radius


class TestSolve3:
    def test_matches_numpy(self, rng):
        for _ in range(20):
            a = rng.standard_normal((3, 3))
            m = a @ a.T + 0.5 * np.eye(3)
            b = rng.standard_normal(3)
            assert np.allclose(_solve3(m, b), np.linalg.solve(m, b), atol=1e-10)


class TestMassMatrix:
    def test_symmetric_positive_definite(self, dynamics, rng):
        for _ in range(20):
            q = random_joint_vector(rng)
            m = dynamics.mass_matrix(q)
            assert np.allclose(m, m.T, atol=1e-12)
            assert np.all(np.linalg.eigvalsh(m) > 0)

    def test_inertia_grows_with_insertion(self, dynamics):
        # Deeper insertion -> larger lever arm -> more inertia about joints.
        q_shallow = np.array([0.2, 1.5, 0.06])
        q_deep = np.array([0.2, 1.5, 0.28])
        m_s = dynamics.mass_matrix(q_shallow)
        m_d = dynamics.mass_matrix(q_deep)
        assert m_d[0, 0] > m_s[0, 0]
        assert m_d[1, 1] > m_s[1, 1]

    def test_prismatic_inertia_is_total_mass(self, dynamics, rng):
        q = random_joint_vector(rng)
        m = dynamics.mass_matrix(q)
        p = dynamics.params
        assert m[2, 2] == pytest.approx(
            p.base_inertias[2] + p.instrument_mass, rel=1e-9
        )


class TestForces:
    def test_gravity_matches_potential_gradient(self, dynamics, rng):
        # g(q) must equal the numeric gradient of the potential energy.
        p = dynamics.params
        eps = 1e-7

        def potential(q):
            tip = dynamics.arm.forward(q)
            com2 = p.link2_com_radius * dynamics.arm.tool_axis(q[0], q[1])
            return -p.instrument_mass * (GRAVITY @ tip) - p.link2_mass * (
                GRAVITY @ com2
            )

        for _ in range(10):
            q = random_joint_vector(rng)
            numeric = np.array(
                [
                    (potential(q + e) - potential(q - e)) / (2 * eps)
                    for e in np.eye(3) * eps
                ]
            )
            assert np.allclose(dynamics.gravity_force(q), numeric, atol=1e-5)

    def test_coriolis_zero_at_rest(self, dynamics, rng):
        q = random_joint_vector(rng)
        assert np.allclose(dynamics.coriolis_force(q, np.zeros(3)), 0.0)

    def test_coriolis_quadratic_in_velocity(self, dynamics, rng):
        q = random_joint_vector(rng)
        qdot = np.array([0.3, -0.2, 0.05])
        c1 = dynamics.coriolis_force(q, qdot)
        c2 = dynamics.coriolis_force(q, 2 * qdot)
        assert np.allclose(c2, 4 * c1, rtol=1e-3, atol=1e-8)

    def test_disabled_terms(self, rng):
        dyn = ManipulatorDynamics(include_coriolis=False, include_gravity=False)
        q = random_joint_vector(rng)
        assert np.allclose(dyn.coriolis_force(q, np.ones(3)), 0.0)
        assert np.allclose(dyn.gravity_force(q), 0.0)


class TestAcceleration:
    def test_gravity_compensation_holds_still(self, dynamics, rng):
        q = random_joint_vector(rng)
        tau = dynamics.gravity_compensation(q)
        acc = dynamics.acceleration(q, np.zeros(3), tau)
        assert np.allclose(acc, 0.0, atol=1e-9)

    def test_torque_produces_aligned_acceleration(self, dynamics, rng):
        q = random_joint_vector(rng)
        tau = dynamics.gravity_compensation(q) + np.array([0.5, 0.0, 0.0])
        acc = dynamics.acceleration(q, np.zeros(3), tau)
        assert acc[0] > 0

    def test_extra_inertia_slows_response(self, dynamics, rng):
        q = random_joint_vector(rng)
        tau = dynamics.gravity_compensation(q) + np.array([1.0, 0.0, 0.0])
        fast = dynamics.acceleration(q, np.zeros(3), tau)
        slow = dynamics.acceleration(
            q, np.zeros(3), tau, extra_inertia=np.eye(3) * 0.05
        )
        assert abs(slow[0]) < abs(fast[0])

    def test_extra_damping_opposes_velocity(self, dynamics, rng):
        q = random_joint_vector(rng)
        qdot = np.array([1.0, 0.0, 0.0])
        tau = dynamics.gravity_compensation(q)
        no_damp = dynamics.acceleration(q, qdot, tau)
        damped = dynamics.acceleration(
            q, qdot, tau, extra_damping=np.eye(3) * 0.5
        )
        assert damped[0] < no_damp[0]

    def test_consistent_with_split_terms(self, dynamics, rng):
        # acceleration() must equal the explicitly assembled EOM.
        q = random_joint_vector(rng)
        qdot = np.array([0.2, -0.1, 0.03])
        tau = np.array([0.4, 0.1, 1.0])
        rhs = (
            tau
            - dynamics.coriolis_force(q, qdot)
            - dynamics.gravity_force(q)
            - dynamics.friction_force(qdot)
        )
        expected = np.linalg.solve(dynamics.mass_matrix(q), rhs)
        assert np.allclose(
            dynamics.acceleration(q, qdot, tau), expected, atol=1e-8
        )

    def test_frictionless_energy_conservation(self, rng):
        # With no friction, integrating the free EOM conserves energy.
        dyn = ManipulatorDynamics(
            friction=FrictionModel(
                viscous=np.zeros(3), coulomb=np.zeros(3)
            )
        )
        q = np.array([0.1, 1.4, 0.15])
        qdot = np.array([0.3, -0.2, 0.02])

        def energy(q, qdot):
            p = dyn.params
            kinetic = 0.5 * qdot @ dyn.mass_matrix(q) @ qdot
            tip = dyn.arm.forward(q)
            com2 = p.link2_com_radius * dyn.arm.tool_axis(q[0], q[1])
            potential = -p.instrument_mass * (GRAVITY @ tip) - p.link2_mass * (
                GRAVITY @ com2
            )
            return kinetic + potential

        e0 = energy(q, qdot)
        h = 1e-5
        for _ in range(2000):
            acc = dyn.acceleration(q, qdot, np.zeros(3))
            q = q + h * qdot + 0.5 * h * h * acc
            qdot = qdot + h * acc
        assert energy(q, qdot) == pytest.approx(e0, rel=5e-3)

"""Shared fixtures for the test suite."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.thresholds import SafetyThresholds
from repro.dynamics.manipulator import ManipulatorDynamics
from repro.dynamics.plant import RavenPlant
from repro.kinematics.spherical_arm import SphericalArm
from repro.kinematics.workspace import Workspace


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="re-record golden trace fingerprints instead of comparing; "
        "review and commit the resulting diff under tests/golden/",
    )


@pytest.fixture
def golden(request):
    """The golden-trace store under ``tests/golden/``."""
    from repro.testing.golden import GoldenStore

    return GoldenStore(
        Path(__file__).parent / "golden",
        update=request.config.getoption("--update-golden"),
    )


@pytest.fixture
def rng():
    """Deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def arm():
    """Default-geometry spherical arm."""
    return SphericalArm()


@pytest.fixture
def workspace():
    """Default workspace limits."""
    return Workspace()


@pytest.fixture
def dynamics():
    """Default manipulator dynamics."""
    return ManipulatorDynamics()


@pytest.fixture
def released_plant():
    """A plant with brakes released, at the neutral pose."""
    plant = RavenPlant(initial_jpos=Workspace().neutral())
    plant.release_brakes()
    return plant


@pytest.fixture
def loose_thresholds():
    """Realistically wide thresholds: fault-free motion stays well under
    them, but violent injections (tens of thousands of DAC counts) exceed
    all three variable groups within a few cycles."""
    return SafetyThresholds(
        motor_velocity=np.array([15.0, 15.0, 8.0]),
        motor_acceleration=np.array([1200.0, 1200.0, 900.0]),
        joint_velocity=np.array([0.5, 0.5, 0.1]),
    )


@pytest.fixture
def tight_thresholds():
    """Narrow thresholds: almost any motion alarms."""
    return SafetyThresholds(
        motor_velocity=np.array([1e-6, 1e-6, 1e-6]),
        motor_acceleration=np.array([1e-6, 1e-6, 1e-6]),
        joint_velocity=np.array([1e-9, 1e-9, 1e-9]),
    )


def random_joint_vector(rng: np.random.Generator) -> np.ndarray:
    """A random joint vector strictly inside the default workspace."""
    ws = Workspace()
    lo, hi = ws.lower, ws.upper
    margin = 0.05 * (hi - lo)
    return rng.uniform(lo + margin, hi - margin)

"""Tests for repro.sim.visualize (the graphic-simulator stand-in)."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.control.state_machine import RobotState
from repro.sim.trace import RunTrace
from repro.sim.visualize import render_svg, save_svg


def make_trace(n=100, attack_at=None, alerts=(), estops=()):
    trace = RunTrace()
    for k in range(n):
        angle = 2 * np.pi * k / n
        trace.record(
            time=k * trace.dt,
            state=RobotState.PEDAL_DOWN,
            tip_pos=np.array([0.01 * np.cos(angle), 0.01 * np.sin(angle), -0.1]),
            pos_d=np.array([0.011 * np.cos(angle), 0.011 * np.sin(angle), -0.1]),
            jpos=np.zeros(3),
            jvel=np.zeros(3),
            mpos=np.zeros(3),
            dac=np.zeros(3),
        )
    trace.attack_first_cycle = attack_at
    trace.detector_alert_cycles = list(alerts)
    for when, reason in estops:
        trace.estop_events.append((when, reason))
    return trace


class TestRenderSvg:
    def test_valid_xml(self):
        svg = render_svg(make_trace())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_three_projections(self):
        svg = render_svg(make_trace())
        assert svg.count("<rect") >= 3
        assert "top (x-y)" in svg and "front (x-z)" in svg and "side (y-z)" in svg

    def test_actual_and_desired_paths_drawn(self):
        svg = render_svg(make_trace())
        assert svg.count("<polyline") >= 6  # 2 paths x 3 panels

    def test_reference_adds_polylines(self):
        base = render_svg(make_trace())
        with_ref = render_svg(make_trace(), reference=make_trace())
        assert with_ref.count("<polyline") > base.count("<polyline")

    def test_event_markers(self):
        trace = make_trace(attack_at=10, alerts=[12], estops=[(0.02, "test")])
        svg = render_svg(trace)
        assert "<title>attack start</title>" in svg
        assert "<title>detector alert</title>" in svg
        assert "E-STOP: test" in svg

    def test_negative_alert_cycles_skipped(self):
        svg = render_svg(make_trace(alerts=[-1]))
        # Legend text remains, but no alert marker is drawn.
        assert "<title>detector alert</title>" not in svg

    def test_too_short_trace_rejected(self):
        with pytest.raises(ValueError):
            render_svg(make_trace(n=1))

    def test_span_reported_in_mm(self):
        svg = render_svg(make_trace())
        assert "span 2" in svg  # ~20 mm circle diameter


class TestSaveSvg:
    def test_writes_file(self, tmp_path):
        out = save_svg(make_trace(), tmp_path / "run.svg")
        assert out.exists()
        assert out.read_text().startswith("<svg")

    def test_title_embedded(self, tmp_path):
        out = save_svg(make_trace(), tmp_path / "t.svg", title="my run")
        assert "my run" in out.read_text()

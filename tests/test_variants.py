"""Tests for repro.attacks.variants (Table I attack variants)."""

import numpy as np
import pytest

from repro.attacks.malware import PedalDownTrigger
from repro.attacks.variants import (
    DriftedTrigArm,
    build_encoder_corruption_library,
    build_plc_state_corruption_library,
    build_socket_drop_library,
    build_socket_hijack_library,
    install_math_drift,
)
from repro.control.state_machine import RobotState
from repro.errors import InverseKinematicsError
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.runner import run_fault_free

DURATION = 1.1


def short_config(seed=21):
    return RigConfig(seed=seed, duration_s=DURATION, trajectory_name="circle")


class TestSocketVariants:
    def test_port_change_blocks_teleoperation(self):
        rig = SurgicalRig(
            short_config(), preload_libraries=[build_socket_drop_library()]
        )
        trace = rig.run()
        assert trace.pedal_down_fraction() == 0.0

    def test_hijack_replaces_motion(self):
        reference = run_fault_free(seed=21, duration_s=DURATION)
        trigger = PedalDownTrigger.for_pedal_down(
            delay_cycles=150, duration_cycles=300
        )
        library = build_socket_hijack_library(
            trigger, hijack_dpos_m=np.array([1e-4, 0.0, 0.0])
        )
        rig = SurgicalRig(short_config(), preload_libraries=[library])
        trace = rig.run()
        assert trace.max_deviation_from(reference) > 1e-3


class TestMathDrift:
    def test_drifted_arm_forward_skews(self):
        clean = DriftedTrigArm(drift_per_call=0.0)
        drifted = DriftedTrigArm(drift_per_call=1e-3)
        q = np.array([0.2, 1.5, 0.15])
        p0 = clean.forward(q)
        for _ in range(100):
            drifted.forward(q)
        assert np.linalg.norm(drifted.forward(q) - p0) > 1e-4

    def test_ik_consistency_check_eventually_fails(self):
        arm = DriftedTrigArm(drift_per_call=5e-5)
        q = np.array([0.2, 1.5, 0.15])
        target = arm.forward(q)
        with pytest.raises(InverseKinematicsError):
            for _ in range(2000):
                arm.inverse(target, reference=q)

    def test_install_math_drift_swaps_controller_arm(self):
        rig = SurgicalRig(short_config())
        drifted = install_math_drift(rig, drift_per_call=1e-6)
        assert rig.controller.arm is drifted
        # The physical plant's kinematics stay untouched.
        assert rig.arm is not drifted

    def test_drift_causes_ik_failure_estop(self):
        rig = SurgicalRig(short_config())
        install_math_drift(rig, drift_per_call=5e-6)
        trace = rig.run()
        assert any("IK" in r for r in trace.estop_reasons)


class TestPlcStateCorruption:
    def test_homing_never_completes(self):
        rig = SurgicalRig(
            short_config(),
            preload_libraries=[build_plc_state_corruption_library()],
        )
        trace = rig.run()
        assert trace.pedal_down_fraction() == 0.0
        # The software stays stuck in INIT: no Pedal Up packets observed.
        assert RobotState.PEDAL_UP not in trace.states


class TestEncoderCorruption:
    def test_phantom_error_moves_real_arm(self):
        reference = run_fault_free(seed=21, duration_s=DURATION)
        trigger = PedalDownTrigger.for_pedal_down(
            delay_cycles=150, duration_cycles=200
        )
        library = build_encoder_corruption_library(trigger, offset_counts=4000)
        rig = SurgicalRig(short_config(), preload_libraries=[library])
        trace = rig.run()
        assert trace.max_deviation_from(reference) > 1e-3

"""Tests for repro.attacks.injection and eavesdrop libraries."""

import numpy as np
import pytest

from repro import constants
from repro.attacks.eavesdrop import EavesdropLogger, build_eavesdropper_library
from repro.attacks.injection import (
    ByteCorruptionInjection,
    DacOffsetInjection,
    UserInputInjection,
    build_scenario_a_library,
    build_scenario_b_library,
)
from repro.attacks.malware import PedalDownTrigger
from repro.control.state_machine import RobotState
from repro.errors import AttackConfigError
from repro.hw.usb_packet import decode_command_packet, encode_command_packet
from repro.sysmodel.linker import DynamicLinker, SystemEnvironment
from repro.teleop.itp import ItpPacket, decode_itp, encode_itp


class RecordingDevice:
    def __init__(self):
        self.written = []

    def fd_write(self, data):
        self.written.append(bytes(data))
        return len(data)

    def fd_read(self, n):
        return b""


class QueueSocket:
    def __init__(self, payloads):
        self.payloads = list(payloads)

    def fd_write(self, data):
        return len(data)

    def fd_read(self, n):
        return b""

    def fd_recvfrom(self, n):
        return self.payloads.pop(0) if self.payloads else None


def spawn_with(library, name="r2_control"):
    env = SystemEnvironment()
    env.set_user_preload("surgeon", library)
    return DynamicLinker(env).spawn(name, user="surgeon")


class TestDacOffsetInjection:
    def test_adds_offset(self):
        packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [1000, 0, 0])
        modified = DacOffsetInjection(5000, channel=0).apply(packet)
        assert decode_command_packet(modified).dac_values[0] == 6000

    def test_saturates_int16(self):
        packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [30000, 0, 0])
        modified = DacOffsetInjection(20000, channel=0).apply(packet)
        assert decode_command_packet(modified).dac_values[0] == 32767

    def test_leaves_checksum_stale(self):
        packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [1000, 0, 0])
        modified = DacOffsetInjection(5000).apply(packet)
        assert not decode_command_packet(modified).checksum_ok

    def test_other_channels_untouched(self):
        packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [1, 2, 3])
        modified = DacOffsetInjection(100, channel=1).apply(packet)
        values = decode_command_packet(modified).dac_values
        assert values[0] == 1 and values[2] == 3

    def test_zero_offset_rejected(self):
        with pytest.raises(AttackConfigError):
            DacOffsetInjection(0)

    def test_bad_channel_rejected(self):
        with pytest.raises(AttackConfigError):
            DacOffsetInjection(100, channel=9)


class TestByteCorruptionInjection:
    def test_state_byte_protected(self, rng):
        with pytest.raises(AttackConfigError):
            ByteCorruptionInjection(rng, byte_index=constants.USB_STATE_BYTE)

    def test_corrupts_chosen_byte_consistently(self, rng):
        payload = ByteCorruptionInjection(rng)
        packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [0, 0, 0])
        first = payload.apply(packet)
        second = payload.apply(packet)
        assert first == second  # byte and value frozen for the burst

    def test_value_in_range(self, rng):
        payload = ByteCorruptionInjection(rng, value_range=(10, 20))
        packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [0, 0, 0])
        modified = payload.apply(packet)
        assert 10 <= modified[payload.byte_index] <= 20

    def test_targets_live_dac_high_byte(self, rng):
        payload = ByteCorruptionInjection(rng)
        payload.apply(encode_command_packet(RobotState.PEDAL_DOWN, True, [0, 0, 0]))
        assert payload.byte_index in (1, 3, 5)


class TestScenarioBLibrary:
    def _packets(self):
        return {
            "up": encode_command_packet(RobotState.PEDAL_UP, True, [100, 0, 0]),
            "down": encode_command_packet(RobotState.PEDAL_DOWN, True, [100, 0, 0]),
        }

    def test_injects_only_in_pedal_down(self):
        trigger = PedalDownTrigger.for_pedal_down(single_burst=False)
        library = build_scenario_b_library(trigger, DacOffsetInjection(500))
        process = spawn_with(library)
        device = RecordingDevice()
        fd = process.open_device(device)
        packets = self._packets()
        process.write(fd, packets["up"])
        process.write(fd, packets["down"])
        assert decode_command_packet(device.written[0]).dac_values[0] == 100
        assert decode_command_packet(device.written[1]).dac_values[0] == 600

    def test_other_processes_untouched(self):
        trigger = PedalDownTrigger.for_pedal_down(single_burst=False)
        library = build_scenario_b_library(trigger, DacOffsetInjection(500))
        process = spawn_with(library, name="text_editor")
        device = RecordingDevice()
        fd = process.open_device(device)
        process.write(fd, self._packets()["down"])
        assert decode_command_packet(device.written[0]).dac_values[0] == 100

    def test_respects_trigger_duration(self):
        trigger = PedalDownTrigger.for_pedal_down(duration_cycles=2)
        library = build_scenario_b_library(trigger, DacOffsetInjection(500))
        process = spawn_with(library)
        device = RecordingDevice()
        fd = process.open_device(device)
        down = self._packets()["down"]
        for _ in range(4):
            process.write(fd, down)
        values = [decode_command_packet(d).dac_values[0] for d in device.written]
        assert values == [600, 600, 100, 100]

    def test_non_usb_writes_pass_through(self):
        trigger = PedalDownTrigger.for_pedal_down(single_burst=False)
        library = build_scenario_b_library(trigger, DacOffsetInjection(500))
        process = spawn_with(library)
        device = RecordingDevice()
        fd = process.open_device(device)
        process.write(fd, b"log line\n")
        assert device.written == [b"log line\n"]


class TestUserInputInjection:
    def test_adds_error_along_direction(self):
        payload = UserInputInjection(error_m=1e-3, direction=[1.0, 0.0, 0.0])
        packet = ItpPacket(0, True, np.array([1e-5, 0, 0]))
        out = payload.apply(packet)
        assert out.dpos[0] == pytest.approx(1e-5 + 1e-3)

    def test_direction_normalized(self):
        payload = UserInputInjection(error_m=2e-3, direction=[0.0, 3.0, 0.0])
        out = payload.apply(ItpPacket(0, True, np.zeros(3)))
        assert out.dpos[1] == pytest.approx(2e-3)

    def test_metadata_preserved(self):
        payload = UserInputInjection(error_m=1e-3, direction=[1, 0, 0])
        packet = ItpPacket(17, True, np.zeros(3))
        out = payload.apply(packet)
        assert out.sequence == 17 and out.pedal_down

    def test_invalid_params_rejected(self):
        with pytest.raises(AttackConfigError):
            UserInputInjection(error_m=0.0)
        with pytest.raises(AttackConfigError):
            UserInputInjection(error_m=1e-3, direction=[0, 0, 0])


class TestScenarioALibrary:
    def test_recvfrom_modified_while_triggered(self):
        trigger = PedalDownTrigger.for_pedal_down(single_burst=False)
        payload = UserInputInjection(error_m=1e-3, direction=[1, 0, 0])
        library = build_scenario_a_library(trigger, payload)
        process = spawn_with(library)
        itp = encode_itp(ItpPacket(0, True, np.zeros(3)))
        sock_fd = process.open_device(QueueSocket([itp, itp]))
        usb_fd = process.open_device(RecordingDevice())

        # Before any Pedal Down observation: no injection.
        clean = decode_itp(process.recvfrom(sock_fd, 64))
        assert np.allclose(clean.dpos, 0.0)

        # After the write wrapper observes Pedal Down: injection active.
        process.write(
            usb_fd, encode_command_packet(RobotState.PEDAL_DOWN, True, [0, 0, 0])
        )
        dirty = decode_itp(process.recvfrom(sock_fd, 64))
        assert dirty.dpos[0] == pytest.approx(1e-3)

    def test_injected_packet_has_valid_checksum(self):
        trigger = PedalDownTrigger.for_pedal_down(single_burst=False)
        payload = UserInputInjection(error_m=1e-3, direction=[1, 0, 0])
        library = build_scenario_a_library(trigger, payload)
        process = spawn_with(library)
        itp = encode_itp(ItpPacket(0, True, np.zeros(3)))
        sock_fd = process.open_device(QueueSocket([itp]))
        usb_fd = process.open_device(RecordingDevice())
        process.write(
            usb_fd, encode_command_packet(RobotState.PEDAL_DOWN, True, [0, 0, 0])
        )
        decode_itp(process.recvfrom(sock_fd, 64))  # would raise on checksum


class TestEavesdropper:
    def test_captures_usb_packets_only(self):
        logger = EavesdropLogger()
        library, _ = build_eavesdropper_library(logger)
        process = spawn_with(library)
        device = RecordingDevice()
        fd = process.open_device(device)
        usb = encode_command_packet(RobotState.INIT, False, [1, 2, 3])
        process.write(fd, usb)
        process.write(fd, b"short")
        assert logger.command_packets() == [usb]
        assert logger.call_count == 2

    def test_does_not_modify_traffic(self):
        logger = EavesdropLogger()
        library, _ = build_eavesdropper_library(logger)
        process = spawn_with(library)
        device = RecordingDevice()
        fd = process.open_device(device)
        usb = encode_command_packet(RobotState.PEDAL_DOWN, True, [500, -500, 0])
        process.write(fd, usb)
        assert device.written == [usb]

    def test_forwards_to_sink(self):
        from repro.teleop.network import ExfiltrationSink

        logger = EavesdropLogger()
        sink = ExfiltrationSink()
        library, _ = build_eavesdropper_library(logger, sink=sink)
        process = spawn_with(library)
        fd = process.open_device(RecordingDevice())
        usb = encode_command_packet(RobotState.INIT, False, [])
        process.write(fd, usb)
        assert sink.datagrams == [usb]

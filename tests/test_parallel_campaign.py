"""Tests for the parallel execution engine and the sharded campaign cache.

Covers the engine's three contracts:

- **determinism** — serial and parallel execution produce bit-identical
  outcome lists, in the same order;
- **atomicity** — cache writes go through temp file + ``os.replace``, so
  interrupts can't leave corrupt JSON behind;
- **resumability** — an interrupted campaign leaves valid per-cell shards
  and the next call runs only what's missing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.attacks.campaign import CampaignRunner, ParallelCampaignRunner
from repro.experiments import parallel as engine
from repro.experiments.campaigns import (
    campaign_cache_path,
    get_campaign,
)
from repro.experiments.scale import Scale
from repro.sim.runner import train_thresholds

TINY = Scale(
    name="tiny-parallel",
    training_runs=1,
    training_duration_s=0.7,
    errors_a_mm=(0.1,),
    errors_b_dac=(26000,),
    periods_ms=(16, 64),
    repetitions=1,
    fault_free_runs=1,
    run_duration_s=0.7,
    validation_runs=1,
    validation_duration_s=0.7,
    syscall_samples=10,
    capture_runs=1,
    capture_duration_s=0.7,
)


def _square(x):
    return x * x


class TestEngineBasics:
    def test_resolve_jobs_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert engine.resolve_jobs(3) == 3

    def test_resolve_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert engine.resolve_jobs() == 5

    def test_resolve_jobs_legacy_alias(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert engine.resolve_jobs() == 3

    def test_resolve_jobs_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert engine.resolve_jobs() == engine.default_jobs() >= 1

    def test_resolve_jobs_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            engine.resolve_jobs()

    def test_resolve_jobs_floors_at_one(self):
        assert engine.resolve_jobs(0) == 1
        assert engine.resolve_jobs(-4) == 1

    def test_run_tasks_serial_order(self):
        assert engine.run_tasks(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_run_tasks_parallel_matches_serial(self):
        tasks = list(range(10))
        assert engine.run_tasks(_square, tasks, jobs=2) == engine.run_tasks(
            _square, tasks, jobs=1
        )

    def test_chunked_partitions_in_order(self):
        assert engine.chunked([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
        assert engine.chunked([1, 2], 8) == [[1], [2]]
        assert engine.chunked([], 4) == []


class TestAtomicWrites:
    def test_write_and_replace(self, tmp_path):
        path = tmp_path / "deep" / "cache.json"
        engine.atomic_write_json(path, {"v": 1})
        engine.atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "cache.json"
        engine.atomic_write_json(path, {"v": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]

    def test_failed_write_keeps_old_content(self, tmp_path):
        path = tmp_path / "cache.json"
        engine.atomic_write_json(path, {"v": 1})
        with pytest.raises(TypeError):
            engine.atomic_write_json(path, {"v": object()})
        assert json.loads(path.read_text()) == {"v": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]


class TestVersionedPayloads:
    CONFIG = {"runs": 3, "duration": 1.5}

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "p.json"
        engine.atomic_write_json(
            path, engine.versioned_payload(self.CONFIG, {"data": [1, 2]})
        )
        payload = engine.load_versioned_json(path, self.CONFIG)
        assert payload is not None and payload["data"] == [1, 2]

    def test_missing_file(self, tmp_path):
        assert engine.load_versioned_json(tmp_path / "nope.json", self.CONFIG) is None

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text('{"schema": ')  # a torn, non-atomic write
        assert engine.load_versioned_json(path, self.CONFIG) is None

    def test_schema_mismatch(self, tmp_path):
        path = tmp_path / "p.json"
        payload = engine.versioned_payload(self.CONFIG, {"data": 1})
        payload["schema"] = engine.SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert engine.load_versioned_json(path, self.CONFIG) is None

    def test_config_mismatch(self, tmp_path):
        path = tmp_path / "p.json"
        engine.atomic_write_json(
            path, engine.versioned_payload(self.CONFIG, {"data": 1})
        )
        assert engine.load_versioned_json(path, {"runs": 4}) is None

    def test_fingerprint_stable_under_key_order(self):
        a = engine.config_fingerprint({"x": 1, "y": [2, 3]})
        b = engine.config_fingerprint({"y": [2, 3], "x": 1})
        assert a == b
        assert a != engine.config_fingerprint({"x": 1, "y": [2, 4]})


@pytest.mark.campaign
class TestSerialParallelEquivalence:
    GRID = dict(scenario="B", error_values=[26000], periods_ms=[16])

    def test_small_grid_bit_identical(self, loose_thresholds):
        serial = CampaignRunner(loose_thresholds, duration_s=0.7).run_campaign(
            **self.GRID, repetitions=1, fault_free_runs=1
        )
        parallel = ParallelCampaignRunner(
            loose_thresholds, duration_s=0.7, jobs=2
        ).run_campaign(**self.GRID, repetitions=1, fault_free_runs=1)
        assert serial.outcomes == parallel.outcomes

    @pytest.mark.slow
    def test_full_grid_bit_identical(self, loose_thresholds):
        grid = dict(
            scenario="B",
            error_values=[9000, 26000],
            periods_ms=[16, 64],
            repetitions=2,
            fault_free_runs=4,
        )
        serial = CampaignRunner(loose_thresholds, duration_s=0.8).run_campaign(
            **grid
        )
        parallel = ParallelCampaignRunner(
            loose_thresholds, duration_s=0.8, jobs=4
        ).run_campaign(**grid)
        assert serial.outcomes == parallel.outcomes

    def test_threshold_training_bit_identical(self):
        serial = train_thresholds(num_runs=2, duration_s=0.7, jobs=1)
        parallel = train_thresholds(num_runs=2, duration_s=0.7, jobs=2)
        for group in ("motor_velocity", "motor_acceleration", "joint_velocity"):
            assert np.array_equal(getattr(serial, group), getattr(parallel, group))


@pytest.mark.campaign
class TestShardedCampaignCache:
    def _get(self, tmp_path, **kwargs):
        return get_campaign("B", TINY, cache_dir=tmp_path, jobs=1, **kwargs)

    def test_shards_written(self, tmp_path):
        result = self._get(tmp_path)
        shard_dir = campaign_cache_path("B", TINY, tmp_path)
        names = sorted(p.name for p in shard_dir.iterdir())
        assert names == [
            "cell_0000.json",
            "cell_0001.json",
            "fault_free.json",
            "meta.json",
        ]
        # 2 cells x 1 repetition + 1 fault-free run.
        assert len(result.outcomes) == 3

    def test_cache_hit_runs_nothing(self, tmp_path, monkeypatch):
        first = self._get(tmp_path)

        def boom(*args, **kwargs):
            raise AssertionError("cache hit must not execute runs")

        monkeypatch.setattr(CampaignRunner, "run_cell_once", boom)
        monkeypatch.setattr(CampaignRunner, "run_fault_free_once", boom)
        monkeypatch.setattr(CampaignRunner, "compute_reference_tip", boom)
        again = self._get(tmp_path)
        assert again.outcomes == first.outcomes

    def test_resume_runs_only_missing_cells(self, tmp_path, monkeypatch):
        first = self._get(tmp_path)
        shard_dir = campaign_cache_path("B", TINY, tmp_path)
        # Simulate an interrupt that lost the second cell's shard.
        (shard_dir / "cell_0001.json").unlink()

        calls = []
        original = CampaignRunner.run_cell_once

        def counting(self, cell, seed):
            calls.append((cell.error_value, cell.period_ms, seed))
            return original(self, cell, seed)

        monkeypatch.setattr(CampaignRunner, "run_cell_once", counting)
        resumed = self._get(tmp_path)
        assert resumed.outcomes == first.outcomes
        assert calls == [(26000, 64, 0)]  # only the lost cell re-ran

    def test_meta_mismatch_invalidates_all_shards(self, tmp_path, monkeypatch):
        self._get(tmp_path)
        shard_dir = campaign_cache_path("B", TINY, tmp_path)
        meta = json.loads((shard_dir / "meta.json").read_text())
        meta["schema"] = -1
        (shard_dir / "meta.json").write_text(json.dumps(meta))

        calls = []
        original = CampaignRunner.run_cell_once

        def counting(self, cell, seed):
            calls.append(cell.period_ms)
            return original(self, cell, seed)

        monkeypatch.setattr(CampaignRunner, "run_cell_once", counting)
        self._get(tmp_path)
        assert sorted(calls) == [16, 64]  # every cell re-ran

    def test_force_rerun_discards_shards(self, tmp_path, monkeypatch):
        first = self._get(tmp_path)

        calls = []
        original = CampaignRunner.run_cell_once

        def counting(self, cell, seed):
            calls.append(cell.period_ms)
            return original(self, cell, seed)

        monkeypatch.setattr(CampaignRunner, "run_cell_once", counting)
        rerun = self._get(tmp_path, force_rerun=True)
        assert sorted(calls) == [16, 64]
        assert rerun.outcomes == first.outcomes

    def test_corrupt_shard_recovers(self, tmp_path):
        first = self._get(tmp_path)
        shard_dir = campaign_cache_path("B", TINY, tmp_path)
        (shard_dir / "cell_0000.json").write_text('{"outcomes": [')
        recovered = self._get(tmp_path)
        assert recovered.outcomes == first.outcomes

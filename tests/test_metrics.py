"""Tests for repro.core.metrics."""

import pytest

from repro.core.metrics import ConfusionMatrix, classification_report


class TestConfusionMatrix:
    def test_from_pairs(self):
        pairs = [(True, True), (True, False), (False, True), (False, False)]
        m = ConfusionMatrix.from_pairs(pairs)
        assert (m.tp, m.fn, m.fp, m.tn) == (1, 1, 1, 1)

    def test_accuracy(self):
        m = ConfusionMatrix(tp=8, tn=2, fp=0, fn=0)
        assert m.accuracy == 1.0
        m = ConfusionMatrix(tp=5, tn=4, fp=1, fn=0)
        assert m.accuracy == pytest.approx(0.9)

    def test_tpr(self):
        m = ConfusionMatrix(tp=9, fn=1)
        assert m.tpr == pytest.approx(0.9)

    def test_fpr(self):
        m = ConfusionMatrix(fp=1, tn=9)
        assert m.fpr == pytest.approx(0.1)

    def test_precision_and_f1(self):
        m = ConfusionMatrix(tp=6, fp=2, fn=2)
        assert m.precision == pytest.approx(0.75)
        assert m.f1 == pytest.approx(2 * 0.75 * 0.75 / 1.5)

    def test_empty_matrix_zeroes(self):
        m = ConfusionMatrix()
        assert m.accuracy == 0.0
        assert m.tpr == 0.0
        assert m.fpr == 0.0
        assert m.f1 == 0.0

    def test_no_positives_tpr_zero(self):
        m = ConfusionMatrix(tn=10)
        assert m.tpr == 0.0

    def test_addition_pools_counts(self):
        a = ConfusionMatrix(tp=1, fp=2, tn=3, fn=4)
        b = ConfusionMatrix(tp=10, fp=20, tn=30, fn=40)
        c = a + b
        assert (c.tp, c.fp, c.tn, c.fn) == (11, 22, 33, 44)

    def test_total(self):
        assert ConfusionMatrix(tp=1, fp=2, tn=3, fn=4).total == 10

    def test_perfect_detector(self):
        pairs = [(True, True)] * 50 + [(False, False)] * 50
        m = ConfusionMatrix.from_pairs(pairs)
        assert m.accuracy == 1.0 and m.f1 == 1.0 and m.fpr == 0.0

    def test_report_format(self):
        m = ConfusionMatrix(tp=9, fn=1, fp=1, tn=9)
        report = classification_report(m, name="dynmodel")
        assert "dynmodel" in report
        assert "ACC  90.0" in report
        assert "n=20" in report

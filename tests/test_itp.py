"""Tests for repro.teleop.itp."""

import numpy as np
import pytest

from repro import constants
from repro.errors import ChecksumError, PacketError
from repro.teleop.itp import (
    ITP_MODE_CARTESIAN,
    ItpPacket,
    clamp_increment,
    decode_itp,
    encode_itp,
)


class TestItpPacket:
    def test_roundtrip(self):
        packet = ItpPacket(
            sequence=42,
            pedal_down=True,
            dpos=np.array([1e-4, -2e-4, 5e-5]),
            dquat=np.array([0.999, 0.01, -0.02, 0.003]),
        )
        decoded = decode_itp(encode_itp(packet))
        assert decoded.sequence == 42
        assert decoded.pedal_down
        assert decoded.mode == ITP_MODE_CARTESIAN
        assert np.allclose(decoded.dpos, packet.dpos, atol=1e-9)
        assert np.allclose(decoded.dquat, packet.dquat, atol=1e-9)

    def test_size(self):
        data = encode_itp(ItpPacket(0, False, np.zeros(3)))
        assert len(data) == constants.ITP_PACKET_SIZE

    def test_pedal_up_roundtrip(self):
        decoded = decode_itp(encode_itp(ItpPacket(1, False, np.zeros(3))))
        assert not decoded.pedal_down

    def test_sequence_wraps_32bit(self):
        decoded = decode_itp(encode_itp(ItpPacket(2**32 + 5, True, np.zeros(3))))
        assert decoded.sequence == 5

    def test_nanometre_resolution(self):
        packet = ItpPacket(0, True, np.array([1e-9, 0, 0]))
        decoded = decode_itp(encode_itp(packet))
        assert decoded.dpos[0] == pytest.approx(1e-9)

    def test_bad_shape_rejected(self):
        with pytest.raises(PacketError):
            ItpPacket(0, True, np.zeros(2))
        with pytest.raises(PacketError):
            ItpPacket(0, True, np.zeros(3), dquat=np.zeros(3))

    def test_oversized_increment_rejected(self):
        with pytest.raises(PacketError):
            encode_itp(ItpPacket(0, True, np.array([3.0, 0, 0])))

    def test_checksum_verified(self):
        data = bytearray(encode_itp(ItpPacket(7, True, np.zeros(3))))
        data[10] ^= 0x40
        with pytest.raises(ChecksumError):
            decode_itp(bytes(data))

    def test_checksum_skippable(self):
        data = bytearray(encode_itp(ItpPacket(7, True, np.zeros(3))))
        data[10] ^= 0x40
        decode_itp(bytes(data), verify_checksum=False)

    def test_wrong_length_rejected(self):
        with pytest.raises(PacketError):
            decode_itp(b"\x00" * 10)


class TestClampIncrement:
    def test_within_limit_unchanged(self):
        d = np.array([1e-4, -1e-4, 0.0])
        assert np.allclose(clamp_increment(d), d)

    def test_clamps_per_axis(self):
        d = np.array([1.0, -1.0, 0.0])
        out = clamp_increment(d)
        assert out[0] == constants.ITP_MAX_INCREMENT_M
        assert out[1] == -constants.ITP_MAX_INCREMENT_M

    def test_custom_limit(self):
        out = clamp_increment(np.array([1.0, 0, 0]), limit=0.1)
        assert out[0] == 0.1

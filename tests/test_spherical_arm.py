"""Tests for repro.kinematics.spherical_arm."""

import math

import numpy as np
import pytest

from repro.errors import InverseKinematicsError
from repro.kinematics.spherical_arm import ArmGeometry, SphericalArm, _wrap_angle
from tests.conftest import random_joint_vector


class TestArmGeometry:
    def test_defaults_match_raven(self):
        g = ArmGeometry()
        assert math.isclose(math.degrees(g.alpha1), 75.0)
        assert math.isclose(math.degrees(g.alpha2), 52.0)

    @pytest.mark.parametrize("alpha1", [0.0, math.pi, -0.1])
    def test_invalid_alpha1_rejected(self, alpha1):
        with pytest.raises(ValueError):
            ArmGeometry(alpha1=alpha1)

    def test_invalid_alpha2_rejected(self):
        with pytest.raises(ValueError):
            ArmGeometry(alpha2=4.0)


class TestForwardKinematics:
    def test_tool_axis_is_unit(self, arm, rng):
        for _ in range(20):
            u = arm.tool_axis(rng.uniform(-3, 3), rng.uniform(-3, 3))
            assert math.isclose(np.linalg.norm(u), 1.0, abs_tol=1e-12)

    def test_tool_axis_matches_matrix_product(self, arm):
        from repro.kinematics.frames import rot_x, rot_z

        g = arm.geometry
        for q1, q2 in [(0.3, 1.1), (-0.8, 2.0), (1.0, 0.5)]:
            expected = (
                rot_z(q1) @ rot_x(g.alpha1) @ rot_z(q2) @ rot_x(g.alpha2)
            ) @ np.array([0.0, 0.0, 1.0])
            assert np.allclose(arm.tool_axis(q1, q2), expected, atol=1e-12)

    def test_forward_depth_scales_position(self, arm):
        q = np.array([0.2, 1.3, 0.1])
        p1 = arm.forward(q)
        q[2] = 0.2
        p2 = arm.forward(q)
        assert np.allclose(p2, 2.0 * p1, atol=1e-12)

    def test_forward_respects_rcm_offset(self):
        offset = np.array([1.0, -2.0, 0.5])
        arm0 = SphericalArm()
        arm1 = SphericalArm(ArmGeometry(rcm_position=offset))
        q = np.array([0.4, 1.0, 0.15])
        assert np.allclose(arm1.forward(q), arm0.forward(q) + offset)

    def test_joint2_axis_tilted_by_alpha1(self, arm):
        a2 = arm.joint2_axis(0.0)
        angle = math.acos(a2 @ np.array([0, 0, 1.0]))
        assert math.isclose(angle, arm.geometry.alpha1, abs_tol=1e-12)


class TestInverseKinematics:
    def test_roundtrip_random(self, arm, rng):
        for _ in range(100):
            q = random_joint_vector(rng)
            p = arm.forward(q)
            q_back = arm.inverse(p, reference=q)
            assert np.allclose(q, q_back, atol=1e-8), (q, q_back)

    def test_solution_reaches_target(self, arm, rng):
        for _ in range(50):
            q = random_joint_vector(rng)
            p = arm.forward(q)
            sol = arm.inverse(p)
            assert np.allclose(arm.forward(sol), p, atol=1e-9)

    def test_rcm_position_rejected(self, arm):
        with pytest.raises(InverseKinematicsError):
            arm.inverse(np.zeros(3))

    def test_outside_cone_rejected(self, arm):
        # The base axis itself is unreachable (cone angle range excludes 0).
        with pytest.raises(InverseKinematicsError):
            arm.inverse(np.array([0.0, 0.0, 0.15]))

    def test_reference_selects_nearest_branch(self, arm):
        q = np.array([0.5, 1.2, 0.15])
        p = arm.forward(q)
        near = arm.inverse(p, reference=q)
        assert np.allclose(near, q, atol=1e-8)

    def test_reachable_predicate(self, arm, rng):
        q = random_joint_vector(rng)
        assert arm.reachable(arm.forward(q))
        assert not arm.reachable(np.array([0.0, 0.0, 0.2]))

    def test_cone_angle_range(self, arm):
        lo, hi = arm.cone_angle_range()
        assert math.isclose(math.degrees(lo), 23.0, abs_tol=1e-9)
        assert math.isclose(math.degrees(hi), 127.0, abs_tol=1e-9)

    def test_depth_recovered(self, arm):
        q = np.array([-0.3, 1.5, 0.22])
        sol = arm.inverse(arm.forward(q), reference=q)
        assert math.isclose(sol[2], 0.22, abs_tol=1e-12)


class TestWrapAngle:
    @pytest.mark.parametrize(
        "angle,expected",
        [(0.0, 0.0), (math.pi, math.pi), (-math.pi, math.pi),
         (3 * math.pi, math.pi), (2 * math.pi, 0.0), (-0.5, -0.5)],
    )
    def test_wrap(self, angle, expected):
        assert math.isclose(_wrap_angle(angle), expected, abs_tol=1e-12)

"""Tests for repro.core.dynamic_model and repro.core.estimator."""

import numpy as np
import pytest

from repro import constants
from repro.core.dynamic_model import RavenDynamicModel
from repro.core.estimator import NextStateEstimator
from repro.dynamics.plant import RavenPlant
from repro.kinematics.workspace import Workspace


@pytest.fixture
def model():
    return RavenDynamicModel()


class TestDynamicModel:
    def test_zero_command_at_rest_barely_moves(self, model):
        q0 = Workspace().neutral()
        jpos, jvel = model.step(q0, np.zeros(3), [0, 0, 0])
        # Gravity produces some acceleration but one 1 ms step is tiny.
        assert np.linalg.norm(jpos - q0) < 1e-4

    def test_torque_command_accelerates(self, model):
        q0 = Workspace().neutral()
        _jpos, jvel = model.step(q0, np.zeros(3), [15000, 0, 0])
        assert jvel[0] > 0

    def test_current_clamped_to_amp_limit(self, model):
        q0 = Workspace().neutral()
        _p1, v1 = model.step(q0, np.zeros(3), [32767, 0, 0])
        _p2, v2 = model.step(q0, np.zeros(3), [327670, 0, 0])
        assert v1[0] == pytest.approx(v2[0])

    def test_tracks_plant_one_step(self):
        """A perfect-parameter model predicts the plant's next state well."""
        plant = RavenPlant(initial_jpos=Workspace().neutral())
        plant.release_brakes()
        model = RavenDynamicModel(parameter_error=1.0, integrator="rk4")
        # Drive the plant somewhere with motion first.
        for _ in range(100):
            plant.step([4000, -2000, 1500])
        q, v = plant.jpos, plant.jvel
        dac = [3000, 1000, -500]
        pred_q, pred_v = model.step(q, v, dac)
        real = plant.step(dac)
        assert np.allclose(pred_q, real.jpos, atol=5e-5)
        assert np.allclose(pred_v, real.jvel, atol=5e-2)

    def test_parameter_error_changes_predictions(self):
        q0 = Workspace().neutral()
        nominal = RavenDynamicModel(parameter_error=1.0)
        off = RavenDynamicModel(parameter_error=1.2)
        _q1, v1 = nominal.step(q0, np.zeros(3), [10000, 0, 0])
        _q2, v2 = off.step(q0, np.zeros(3), [10000, 0, 0])
        assert not np.allclose(v1, v2)

    def test_predict_counts_timing(self, model):
        q0 = Workspace().neutral()
        model.predict(q0, np.zeros(3), [0, 0, 0])
        model.predict(q0, np.zeros(3), [0, 0, 0])
        assert model.predict_calls == 2
        assert model.mean_predict_seconds > 0
        model.reset_timing()
        assert model.predict_calls == 0
        assert model.mean_predict_seconds == 0.0

    def test_euler_and_rk4_agree_roughly(self):
        q0 = Workspace().neutral()
        v0 = np.array([0.1, -0.05, 0.01])
        dac = [5000, 5000, 2000]
        eq, ev = RavenDynamicModel(integrator="euler").step(q0, v0, dac)
        rq, rv = RavenDynamicModel(integrator="rk4").step(q0, v0, dac)
        assert np.allclose(eq, rq, atol=1e-4)
        assert np.allclose(ev, rv, atol=5e-2)


class TestNextStateEstimator:
    def test_requires_sync_before_estimate(self):
        estimator = NextStateEstimator()
        with pytest.raises(RuntimeError):
            estimator.estimate([0, 0, 0])

    def test_sync_sets_position(self):
        estimator = NextStateEstimator()
        q = Workspace().neutral()
        mpos = estimator.model.transmission.motor_positions(q)
        estimator.sync(mpos)
        assert estimator.synced
        assert np.allclose(estimator.jpos, q, atol=1e-12)

    def test_velocity_from_finite_differences(self):
        estimator = NextStateEstimator(velocity_filter_alpha=1.0)
        q = Workspace().neutral()
        trans = estimator.model.transmission
        estimator.sync(trans.motor_positions(q))
        q2 = q + np.array([1e-4, 0, 0])
        estimator.sync(trans.motor_positions(q2))
        assert estimator.jvel[0] == pytest.approx(
            1e-4 / constants.CONTROL_PERIOD_S, rel=0.6
        )

    def test_estimate_reports_instant_rates(self):
        estimator = NextStateEstimator()
        q = Workspace().neutral()
        estimator.sync(estimator.model.transmission.motor_positions(q))
        est = estimator.estimate([20000, 0, 0])
        # A big torque command predicts a motor-acceleration spike.
        assert abs(est.motor_acceleration[0]) > 100.0
        assert est.elapsed_s > 0

    def test_instant_rates_consistent_with_prediction(self):
        estimator = NextStateEstimator()
        q = Workspace().neutral()
        trans = estimator.model.transmission
        estimator.sync(trans.motor_positions(q))
        est = estimator.estimate([5000, -3000, 1000])
        assert np.allclose(est.joint_velocity, est.jvel_next, atol=1e-12)
        assert np.allclose(
            est.motor_velocity, trans.motor_velocities(est.jvel_next), atol=1e-12
        )

    def test_reset_clears(self):
        estimator = NextStateEstimator()
        q = Workspace().neutral()
        estimator.sync(estimator.model.transmission.motor_positions(q))
        estimator.reset()
        assert not estimator.synced
        assert np.allclose(estimator.jvel, 0.0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            NextStateEstimator(velocity_filter_alpha=0.0)

    def test_prediction_feeds_next_velocity_estimate(self):
        """The predictor-corrector velocity leads pure measurement."""
        estimator = NextStateEstimator()
        q = Workspace().neutral()
        trans = estimator.model.transmission
        estimator.sync(trans.motor_positions(q))
        estimator.estimate([20000, 0, 0])  # predicts acceleration
        estimator.sync(trans.motor_positions(q))  # measurement says "still"
        # The blended velocity remembers the predicted speed-up.
        assert estimator.jvel[0] > 0

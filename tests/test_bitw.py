"""Tests for repro.hw.bitw (bump-in-the-wire link protection)."""

import numpy as np
import pytest

from repro import constants
from repro.control.state_machine import RobotState
from repro.dynamics.plant import RavenPlant
from repro.hw.bitw import (
    BitwDecryptor,
    BitwEncryptor,
    BitwError,
    BitwProtectedDevice,
)
from repro.hw.encoder import EncoderBank
from repro.hw.motor_controller import MotorController
from repro.hw.plc import Plc
from repro.hw.usb_board import UsbBoard
from repro.hw.usb_packet import decode_feedback_packet, encode_command_packet
from repro.kinematics.workspace import Workspace

KEY = b"a-sixteen-byte-k-and-then-some!!"


def make_board():
    plant = RavenPlant(initial_jpos=Workspace().neutral())
    plant.release_brakes()
    mc = MotorController(plant)
    plc = Plc(plant, mc)
    return UsbBoard(mc, plc, EncoderBank()), mc


class TestBitwPair:
    def test_seal_open_roundtrip(self):
        enc = BitwEncryptor(KEY)
        dec = BitwDecryptor(KEY)
        frame = b"hello usb board" * 2
        assert dec.open(enc.seal(frame)) == frame

    def test_ciphertext_differs_from_plaintext(self):
        enc = BitwEncryptor(KEY)
        frame = encode_command_packet(RobotState.PEDAL_DOWN, True, [100, 0, 0])
        sealed = enc.seal(frame)
        # The state byte must not be readable on the wire.
        assert frame[0] != sealed[4]  # body starts after the counter

    def test_distinct_frames_distinct_ciphertexts(self):
        enc = BitwEncryptor(KEY)
        frame = b"\x00" * 18
        assert enc.seal(frame) != enc.seal(frame)  # counter advances

    def test_tampered_frame_rejected(self):
        enc = BitwEncryptor(KEY)
        dec = BitwDecryptor(KEY)
        sealed = bytearray(enc.seal(b"payload-bytes-123"))
        sealed[6] ^= 0x10
        with pytest.raises(BitwError):
            dec.open(bytes(sealed))
        assert dec.frames_rejected == 1

    def test_replayed_frame_rejected(self):
        enc = BitwEncryptor(KEY)
        dec = BitwDecryptor(KEY)
        sealed = enc.seal(b"frame-one-payload")
        dec.open(sealed)
        with pytest.raises(BitwError):
            dec.open(sealed)

    def test_short_frame_rejected(self):
        with pytest.raises(BitwError):
            BitwDecryptor(KEY).open(b"\x00" * 5)

    def test_wrong_key_rejected(self):
        sealed = BitwEncryptor(KEY).seal(b"some-frame-content")
        with pytest.raises(BitwError):
            BitwDecryptor(b"completely-different-32-byte-key").open(sealed)

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            BitwEncryptor(b"tiny")

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            BitwEncryptor(KEY, latency_s=-1.0)


class TestBitwProtectedDevice:
    def test_transparent_for_honest_traffic(self):
        board, mc = make_board()
        protected = BitwProtectedDevice(board, KEY)
        packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [1234, 0, 0])
        protected.fd_write(packet)
        assert mc.latched_dac[0] == 1234

    def test_feedback_path_roundtrips(self):
        board, _mc = make_board()
        protected = BitwProtectedDevice(board, KEY)
        protected.fd_write(
            encode_command_packet(RobotState.PEDAL_DOWN, True, [0, 0, 0])
        )
        feedback = decode_feedback_packet(protected.fd_read(26))
        assert feedback.state is RobotState.PEDAL_DOWN

    def test_wire_attacker_frames_dropped(self):
        """A tamperer *between* the BITW boxes achieves nothing."""
        board, mc = make_board()

        def flip(sealed: bytes) -> bytes:
            buf = bytearray(sealed)
            buf[7] ^= 0x40
            return bytes(buf)

        protected = BitwProtectedDevice(board, KEY, wire_tamper=flip)
        packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [9000, 0, 0])
        protected.fd_write(packet)
        assert protected.rejected_writes == 1
        assert np.allclose(mc.latched_dac, 0.0)  # nothing executed

    def test_in_host_malware_unaffected(self):
        """The paper's point: the malicious write wrapper runs *before*
        the encryptor, so BITW protection does not stop scenario B."""
        from repro.attacks.injection import DacOffsetInjection

        board, mc = make_board()
        protected = BitwProtectedDevice(board, KEY)
        packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [100, 0, 0])
        corrupted = DacOffsetInjection(5000, channel=0).apply(packet)
        protected.fd_write(corrupted)  # wrapper output enters the encryptor
        assert mc.latched_dac[0] == 5100  # executed despite BITW

    def test_latency_budget_exposed(self):
        protected = BitwProtectedDevice(make_board()[0], KEY, latency_s=2e-4)
        assert protected.round_trip_latency_s == pytest.approx(4e-4)
        # A pair of realistic BITW boxes already eats a large slice of
        # the 1 ms cycle — the paper's overhead concern.
        assert protected.round_trip_latency_s > 0.25 * constants.CONTROL_PERIOD_S

"""Flight-recorder tests: the ring buffer and the forensic black box.

The integration test reproduces the paper's scenario B (a preloaded
wrapper adds a DAC offset after the RAVEN safety checks) with telemetry
enabled and asserts the dump written at the first blocked command holds
the smoking gun: the DAC the guard saw differs from what the controller
commanded by exactly the injected offset, the per-group margins exceed
1.0, and the preceding cycles of context are present.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mitigation import MitigationStrategy
from repro.obs.flight import FlightRecorder
from repro.obs.runtime import ENV_DIR, ENV_ENABLE, get_runtime, reset_runtime
from repro.sim.runner import (
    make_detector_guard,
    run_fault_free,
    run_scenario_b,
)

pytestmark = pytest.mark.obs


@pytest.fixture
def obs_env(monkeypatch, tmp_path):
    """Enable telemetry for one test; always restore the cached runtime."""
    monkeypatch.setenv(ENV_ENABLE, "1")
    monkeypatch.setenv(ENV_DIR, str(tmp_path))
    reset_runtime()
    yield tmp_path
    reset_runtime()


class TestRing:
    def test_wraparound_keeps_newest(self):
        rec = FlightRecorder(capacity=3)
        for k in range(5):
            rec.record_cycle(cycle=k, t=k * 1e-3, state="PEDAL_DOWN")
        assert [r.cycle for r in rec.records()] == [2, 3, 4]
        assert rec.cycles_recorded == 5
        assert len(rec) == 3

    def test_annotate_touches_latest_record(self):
        rec = FlightRecorder(capacity=2)
        rec.record_cycle(cycle=0, t=0.0, state="INIT")
        rec.record_cycle(cycle=1, t=1e-3, state="INIT")
        rec.annotate(blocked=True, health="stale")
        records = rec.records()
        assert records[0].blocked is None
        assert records[1].blocked is True
        assert records[1].health == "stale"

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_and_load_round_trip(self, tmp_path):
        rec = FlightRecorder(capacity=4, context={"seed": 7, "label": "x"})
        rec.record_cycle(
            cycle=0,
            t=0.0,
            state="PEDAL_DOWN",
            dac_commanded=(1, 2, 3),
            jpos=np.array([0.1, 0.2, 0.3]),
            margins={"motor_velocity": 0.4},
        )
        path = rec.dump(tmp_path / "box.jsonl", reason="manual")
        header, rows = FlightRecorder.load(path)
        assert header["kind"] == "flight"
        assert header["reason"] == "manual"
        assert header["context"] == {"seed": 7, "label": "x"}
        assert header["cycles_in_dump"] == 1
        (row,) = rows
        assert row["dac_commanded"] == [1, 2, 3]
        assert row["jpos"] == pytest.approx([0.1, 0.2, 0.3])
        assert row["margins"] == {"motor_velocity": pytest.approx(0.4)}

    def test_load_rejects_non_flight_files(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "something_else"}\n')
        with pytest.raises(ValueError):
            FlightRecorder.load(path)


class TestScenarioBForensics:
    """End-to-end: an injected attack leaves an analyzable black box."""

    # Attack parameters mirrored from the rig integration suite: the
    # offset fires well inside the run and trips all three alarm groups.
    SEED = 11
    ERROR_DAC = 30_000
    PERIOD_MS = 64
    DURATION_S = 1.1
    ATTACK_DELAY = 150

    def _run_attack(self, loose_thresholds):
        guard = make_detector_guard(
            loose_thresholds, strategy=MitigationStrategy.BLOCK
        )
        result = run_scenario_b(
            seed=self.SEED,
            error_dac=self.ERROR_DAC,
            period_ms=self.PERIOD_MS,
            duration_s=self.DURATION_S,
            attack_delay_cycles=self.ATTACK_DELAY,
            guard=guard,
        )
        return guard, result

    def test_block_dump_contains_the_smoking_gun(
        self, obs_env, loose_thresholds
    ):
        guard, _ = self._run_attack(loose_thresholds)
        assert guard.stats.blocked > 0

        flight_dir = obs_env / "flight"
        dumps = sorted(flight_dir.glob("flight-*-block-*.jsonl"))
        assert dumps, "no block dump written"
        header, rows = FlightRecorder.load(dumps[0])
        assert header["reason"] == "block"
        assert header["context"]["seed"] == self.SEED

        alert_rows = [r for r in rows if r["alert"]]
        assert alert_rows, "dump holds no alerting cycle"
        offender = alert_rows[0]
        # The forensic smoking gun: the DAC the guard saw differs from
        # what the controller commanded by exactly the injected offset.
        deltas = [
            seen - commanded
            for seen, commanded in zip(
                offender["dac_seen"], offender["dac_commanded"]
            )
        ]
        assert self.ERROR_DAC in deltas
        # All three variable groups exceeded their thresholds ...
        assert all(m > 1.0 for m in offender["margins"].values())
        assert offender["blocked"] is True
        # ... and the preceding context is in the box for reconstruction.
        preceding = [r for r in rows if r["cycle"] < offender["cycle"]]
        assert len(preceding) >= 100

    def test_event_log_and_estop_dump(self, obs_env, loose_thresholds):
        guard, _ = self._run_attack(loose_thresholds)
        rt = get_runtime()
        kinds = {e["event"] for e in rt.events}
        assert "flight_dump" in kinds
        # BLOCK escalates to E-STOP when the alarm persists, so the run
        # also leaves an estop dump and an estop event.
        if guard.stats.alerts >= guard.escalate_after_blocks:
            assert "estop" in kinds
            assert list((obs_env / "flight").glob("*-estop-*.jsonl"))

    def test_telemetry_does_not_change_results(
        self, monkeypatch, tmp_path, loose_thresholds
    ):
        """Obs on vs off: identical simulated bytes (zero side effects)."""
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        monkeypatch.delenv(ENV_DIR, raising=False)
        reset_runtime()
        try:
            guard_off = make_detector_guard(
                loose_thresholds, strategy=MitigationStrategy.BLOCK
            )
            off = run_scenario_b(
                seed=self.SEED,
                error_dac=self.ERROR_DAC,
                period_ms=self.PERIOD_MS,
                duration_s=self.DURATION_S,
                attack_delay_cycles=self.ATTACK_DELAY,
                guard=guard_off,
            ).trace.fingerprint()

            monkeypatch.setenv(ENV_ENABLE, "1")
            monkeypatch.setenv(ENV_DIR, str(tmp_path))
            reset_runtime()
            guard_on = make_detector_guard(
                loose_thresholds, strategy=MitigationStrategy.BLOCK
            )
            on = run_scenario_b(
                seed=self.SEED,
                error_dac=self.ERROR_DAC,
                period_ms=self.PERIOD_MS,
                duration_s=self.DURATION_S,
                attack_delay_cycles=self.ATTACK_DELAY,
                guard=guard_on,
            ).trace.fingerprint()
        finally:
            reset_runtime()
        assert on == off
        assert guard_on.stats.alerts == guard_off.stats.alerts

    def test_fault_free_run_leaves_no_dump(self, obs_env):
        run_fault_free(seed=3, duration_s=0.4)
        flight_dir = obs_env / "flight"
        assert not flight_dir.exists() or not list(flight_dir.iterdir())

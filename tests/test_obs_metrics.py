"""Unit tests of the telemetry subsystem (repro.obs).

Covers the metrics registry (counters, gauges, fixed-bucket histograms
and their Prometheus rendering), the span tracer's Chrome trace_event
export, the Stopwatch timing probe, and the env-gated runtime with its
null-object disabled mode.
"""

import json

import pytest

from repro.obs.export import validate_chrome_trace, write_chrome_trace
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.runtime import (
    ENV_DIR,
    ENV_ENABLE,
    get_runtime,
    reset_runtime,
)
from repro.obs.timing import Stopwatch
from repro.obs.tracer import NullTracer, SpanTracer

pytestmark = pytest.mark.obs


@pytest.fixture
def obs_env(monkeypatch, tmp_path):
    """Enable telemetry for the duration of one test, then restore."""
    monkeypatch.setenv(ENV_ENABLE, "1")
    monkeypatch.setenv(ENV_DIR, str(tmp_path))
    reset_runtime()
    yield tmp_path
    reset_runtime()


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        c = Counter("hits", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_decrease(self):
        c = Counter("hits")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(-2)
        assert g.value == 3.0


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)   # lands in the 1.0 bucket (v <= bound)
        h.observe(1.5)   # lands in the 2.0 bucket
        h.observe(7.0)   # overflows into +Inf
        assert h.bucket_counts == [1, 1, 0, 1]
        assert h.count == 3
        assert h.max == 7.0
        assert h.min == 1.0

    def test_mean_and_cumulative(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 0.5, 3.0):
            h.observe(v)
        assert h.mean == pytest.approx(4.0 / 3.0)
        assert h.cumulative_counts() == [2, 3, 3]

    def test_quantile_approximation(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.75) == 2.0
        assert h.quantile(1.0) == 4.0

    def test_overflow_quantile_reports_observed_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 50.0

    def test_rejects_unordered_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_memory_is_bounded(self):
        h = Histogram("h", buckets=DEFAULT_TIME_BUCKETS_S)
        for i in range(10_000):
            h.observe(i * 1e-6)
        assert len(h.bucket_counts) == len(DEFAULT_TIME_BUCKETS_S) + 1
        assert h.count == 10_000


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests").inc(3)
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = reg.to_prometheus()
        assert "# TYPE req_total counter" in text
        assert "req_total 3.0" in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_snapshot_is_json_native(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.25)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["g"]["value"] == 1.25
        assert snap["h"]["count"] == 1

    def test_prefix_narrows_exports(self):
        """The service ``/metrics?prefix=`` scrape path: one metric
        family (or one tenant's counters) without the rest."""
        reg = MetricsRegistry()
        reg.counter("repro_svc_decisions_total_rig_000").inc(4)
        reg.counter("repro_svc_decisions_total_rig_001").inc(2)
        reg.gauge("repro_fleet_sessions").set(2)
        narrowed = reg.snapshot(prefix="repro_svc_")
        assert sorted(narrowed) == [
            "repro_svc_decisions_total_rig_000",
            "repro_svc_decisions_total_rig_001",
        ]
        text = reg.to_prometheus("repro_svc_decisions_total_rig_000")
        assert "repro_svc_decisions_total_rig_000 4.0" in text
        assert "rig_001" not in text
        assert "repro_fleet_sessions" not in text
        # Empty prefix stays the full export.
        assert "repro_fleet_sessions" in reg.to_prometheus()
        assert reg.to_prometheus("no_such_family") == ""


class TestNullObjects:
    def test_null_registry_hands_out_shared_noops(self):
        reg = NullRegistry()
        assert not reg.enabled
        c = reg.counter("anything")
        c.inc(10)
        assert c.value == 0.0
        assert reg.counter("other") is c
        h = reg.histogram("h")
        h.observe(1.0)
        assert h.count == 0
        g = reg.gauge("g")
        g.set(9)
        assert g.value == 0.0
        assert reg.snapshot() == {}
        assert reg.to_prometheus() == ""

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("x"):
            pass
        tracer.add_span("y", start_s=0.0, dur_s=1.0)
        assert tracer.spans == []


class TestTracer:
    def test_span_context_manager_records_interval(self):
        tracer = SpanTracer()
        with tracer.span("work", cat="test", seed=3):
            pass
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.cat == "test"
        assert span.args == {"seed": 3}
        assert span.dur_s >= 0.0

    def test_bounded_span_list_counts_drops(self):
        tracer = SpanTracer(max_spans=2)
        for i in range(5):
            tracer.add_span(f"s{i}", start_s=0.0, dur_s=0.0)
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_chrome_trace_structure(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("outer", cat="sim"):
            pass
        tracer.add_span("task[0]", start_s=tracer.origin_s, dur_s=0.01, tid=42)
        doc = tracer.to_chrome()
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("M") == 1
        assert phases.count("X") == 2
        x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in x)
        assert {e["tid"] for e in x} == {0, 42}
        path = write_chrome_trace(tmp_path / "trace.json", tracer)
        ok, message = validate_chrome_trace(path)
        assert ok, message


class TestStopwatch:
    def test_measures_nonnegative_elapsed(self):
        probe = Stopwatch()
        with probe:
            x = sum(range(100))
        assert x == 4950
        assert probe.elapsed_s >= 0.0

    def test_reusable(self):
        probe = Stopwatch()
        with probe:
            pass
        first = probe.elapsed_s
        with probe:
            sum(range(1000))
        assert probe.elapsed_s >= 0.0
        assert first >= 0.0


class TestRuntimeGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        reset_runtime()
        try:
            rt = get_runtime()
            assert not rt.enabled
            assert isinstance(rt.registry, NullRegistry)
            assert isinstance(rt.tracer, NullTracer)
            assert rt.new_flight_recorder() is None
            rt.log_event("ignored")
            assert rt.events == []
            assert rt.export() == []
        finally:
            reset_runtime()

    def test_falsey_spellings_disable(self, monkeypatch):
        for value in ("0", "false", "off", "no", ""):
            monkeypatch.setenv(ENV_ENABLE, value)
            reset_runtime()
            assert not get_runtime().enabled
        reset_runtime()

    def test_enabled_runtime_is_cached_singleton(self, obs_env):
        rt = get_runtime()
        assert rt.enabled
        assert rt is get_runtime()
        assert rt.registry.enabled
        assert rt.new_flight_recorder() is not None

    def test_export_writes_all_three_artifacts(self, obs_env):
        rt = get_runtime()
        rt.registry.counter("c").inc()
        with rt.tracer.span("s"):
            pass
        rt.log_event("hello", n=1)
        paths = rt.export()
        names = sorted(p.name for p in paths)
        assert names == ["events.jsonl", "metrics.prom", "trace.json"]
        assert all(p.exists() for p in paths)
        ok, _ = validate_chrome_trace(obs_env / "trace.json")
        assert ok

    def test_flight_dump_paths_are_deterministic_and_capped(
        self, monkeypatch, obs_env
    ):
        monkeypatch.setenv("REPRO_OBS_MAX_DUMPS", "2")
        reset_runtime()
        rt = get_runtime()
        p1 = rt.flight_dump_path("circle", seed=3, cycle=10, reason="alarm")
        p2 = rt.flight_dump_path("circle", seed=3, cycle=11, reason="estop")
        p3 = rt.flight_dump_path("circle", seed=3, cycle=12, reason="alarm")
        assert p1 is not None and "flight-circle-seed3-c10-alarm" in p1.name
        assert p2 is not None and p2 != p1
        assert p3 is None  # over the per-process cap
        assert rt.flight_dumps_suppressed == 1

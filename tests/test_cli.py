"""Tests for the ``python -m repro.experiments`` command-line runner."""

import pytest

from repro.experiments.__main__ import ARTIFACTS, main


class TestCli:
    def test_artifact_registry_complete(self):
        assert set(ARTIFACTS) == {
            "table1", "table2", "fig5", "fig6", "fig8", "table4", "fig9",
            "robustness", "fleet",
        }

    def test_unknown_artifact_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig42"])

    def test_no_arguments_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_table2_runs_end_to_end(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "scale: smoke" in out
        assert "=== table2 ===" in out
        assert "baseline" in out
        assert "injection overhead" in out

    def test_fig5_runs_end_to_end(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "state byte: Byte 0" in out

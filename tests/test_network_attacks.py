"""Tests for repro.attacks.network (the Bonaci-style wire baselines)."""

import numpy as np
import pytest

from repro.attacks.network import (
    TamperingChannel,
    make_blind_mitm_adversary,
    make_dos_adversary,
    make_mitm_adversary,
)
from repro.errors import AttackConfigError
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.runner import run_fault_free
from repro.teleop.itp import ItpPacket, decode_itp, encode_itp

DURATION = 1.2


class TestTamperingChannel:
    def test_passthrough_adversary(self):
        channel = TamperingChannel(lambda d: d)
        channel.send(b"x", 0.0)
        assert channel.receive(0.0) == b"x"
        assert channel.attack_stats.seen == 1
        assert channel.attack_stats.modified == 0

    def test_drop(self):
        channel = TamperingChannel(lambda d: None)
        channel.send(b"x", 0.0)
        assert channel.receive(10.0) is None
        assert channel.attack_stats.dropped == 1

    def test_delay(self):
        channel = TamperingChannel(lambda d: (d, 0.5))
        channel.send(b"x", 0.0)
        assert channel.receive(0.4) is None
        assert channel.receive(0.6) == b"x"
        assert channel.attack_stats.delayed == 1

    def test_modify_counted(self):
        channel = TamperingChannel(lambda d: d + b"!")
        channel.send(b"x", 0.0)
        assert channel.receive(0.0) == b"x!"
        assert channel.attack_stats.modified == 1


class TestMitmAdversary:
    def test_rewrites_increment_with_valid_checksum(self):
        adversary = make_mitm_adversary(error_m=1e-3, axis=1, start_after=0)
        original = encode_itp(ItpPacket(0, True, np.zeros(3)))
        forged = adversary(original)
        decoded = decode_itp(forged)  # checksum verifies
        assert decoded.dpos[1] == pytest.approx(1e-3)

    def test_without_checksum_fix_rejected_by_software(self):
        adversary = make_mitm_adversary(
            error_m=1e-3, start_after=0, fix_checksum=False
        )
        original = encode_itp(ItpPacket(0, True, np.zeros(3)))
        forged = adversary(original)
        from repro.errors import ChecksumError

        with pytest.raises(ChecksumError):
            decode_itp(forged)

    def test_start_after_grace_period(self):
        adversary = make_mitm_adversary(error_m=1e-3, start_after=3)
        original = encode_itp(ItpPacket(0, True, np.zeros(3)))
        assert adversary(original) == original
        assert adversary(original) == original
        assert adversary(original) != original  # third packet onward

    def test_bad_axis_rejected(self):
        with pytest.raises(AttackConfigError):
            make_mitm_adversary(axis=5)

    def test_non_itp_traffic_untouched(self):
        adversary = make_mitm_adversary(start_after=0)
        assert adversary(b"short") == b"short"


class TestDosAdversary:
    def test_bad_probability_rejected(self, rng):
        with pytest.raises(AttackConfigError):
            make_dos_adversary(rng, drop_probability=1.5)

    def test_degrades_teleoperation(self, rng):
        """DoS: the robot keeps running but tracking degrades — 'jerky
        motions or difficulty in performing tasks' (Bonaci et al.)."""
        reference = run_fault_free(seed=55, duration_s=DURATION)

        adversary = make_dos_adversary(
            np.random.default_rng(1), drop_probability=0.7,
            delay_s=0.04, delay_probability=0.2, start_after=500,
        )
        channel = TamperingChannel(adversary)
        config = RigConfig(seed=55, duration_s=DURATION)
        rig = SurgicalRig(config, channel=channel)
        trace = rig.run()

        # No crash, no E-STOP...
        assert not trace.estop_occurred()
        # ...but the motion deviates from the intended path.
        deviation = trace.max_deviation_from(reference)
        assert deviation > 1e-4
        assert channel.attack_stats.dropped > 50


class TestMitmInRig:
    def test_wire_mitm_hijacks_plain_itp(self):
        """Against plain ITP, the wire adversary steers the robot."""
        reference = run_fault_free(seed=56, duration_s=DURATION)
        adversary = make_mitm_adversary(error_m=1e-4, axis=0, start_after=600)
        channel = TamperingChannel(adversary)
        config = RigConfig(seed=56, duration_s=DURATION)
        trace = SurgicalRig(config, channel=channel).run()
        assert channel.attack_stats.modified > 0
        assert trace.max_deviation_from(reference) > 1e-3


class TestBlindMitm:
    def test_blind_flips_do_not_validate(self):
        adversary = make_blind_mitm_adversary(start_after=0)
        original = encode_itp(ItpPacket(0, True, np.zeros(3)))
        forged = adversary(original)
        from repro.errors import ChecksumError

        with pytest.raises(ChecksumError):
            decode_itp(forged)

    def test_rig_survives_blind_mitm(self):
        """The control software discards corrupted packets and coasts."""
        adversary = make_blind_mitm_adversary(start_after=600)
        channel = TamperingChannel(adversary)
        config = RigConfig(seed=57, duration_s=DURATION)
        rig = SurgicalRig(config, channel=channel)
        trace = rig.run()
        assert rig.controller.bad_packets > 0
        assert not trace.estop_occurred()

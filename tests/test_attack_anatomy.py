"""End-to-end test of the paper's full three-phase attack anatomy.

Phase 1 (preparation): eavesdrop USB traffic with the preloaded library.
Phase 2 (offline analysis): recover the state byte, watchdog bit and the
Pedal-Down trigger values from the captures alone.
Phase 3 (deployment): build the injection malware *from the analysis
output* and show it corrupts the physical system mid-surgery — and that
the dynamic-model detector catches it preemptively.
"""

import numpy as np
import pytest

from repro import constants
from repro.attacks.analysis import OfflineAnalysis
from repro.attacks.eavesdrop import EavesdropLogger, build_eavesdropper_library
from repro.attacks.injection import DacOffsetInjection, build_scenario_b_library
from repro.attacks.malware import PedalDownTrigger
from repro.core.mitigation import MitigationStrategy
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.runner import make_detector_guard, run_fault_free

DURATION = 1.2


@pytest.fixture(scope="module")
def analysis_conclusion():
    """Phases 1+2: capture three sessions and analyze them."""
    analysis = OfflineAnalysis()
    for seed in (31, 32, 33):
        logger = EavesdropLogger()
        library, _ = build_eavesdropper_library(logger)
        config = RigConfig(
            seed=seed,
            duration_s=DURATION,
            trajectory_name=("circle", "figure8", "suturing")[seed % 3],
            pedal_release_s=DURATION * 0.85 if seed % 2 else None,
        )
        SurgicalRig(config, preload_libraries=[library]).run()
        analysis.add_run(logger.command_packets())
    return analysis.conclude()


class TestOfflinePhases:
    def test_state_byte_recovered(self, analysis_conclusion):
        assert analysis_conclusion.state_byte == constants.USB_STATE_BYTE

    def test_watchdog_bit_recovered(self, analysis_conclusion):
        assert analysis_conclusion.watchdog_bit == constants.USB_WATCHDOG_BIT

    def test_pedal_down_values_recovered(self, analysis_conclusion):
        expected = {
            constants.STATE_BYTE_PEDAL_DOWN,
            constants.STATE_BYTE_PEDAL_DOWN | (1 << constants.USB_WATCHDOG_BIT),
        }
        assert set(analysis_conclusion.pedal_down_raw_values) == expected

    def test_state_names_mapped(self, analysis_conclusion):
        assert analysis_conclusion.value_to_state[
            constants.STATE_BYTE_PEDAL_DOWN
        ] == "Pedal Down"


class TestDeploymentPhase:
    def _attack_library(self, conclusion):
        """Build the malware purely from the attacker's conclusions."""
        trigger = PedalDownTrigger(
            trigger_values=conclusion.pedal_down_raw_values,
            delay_cycles=150,
            duration_cycles=64,
        )
        return build_scenario_b_library(
            trigger, DacOffsetInjection(26000, channel=0)
        ), trigger

    def test_attack_fires_only_during_engagement(self, analysis_conclusion):
        library, trigger = self._attack_library(analysis_conclusion)
        config = RigConfig(seed=35, duration_s=DURATION)
        rig = SurgicalRig(config, preload_libraries=[library])
        trace = rig.run()
        # The burst runs until its duration OR until the robot's own
        # safety checks E-STOP it (the state byte then leaves Pedal Down,
        # which also silences the trigger — the attack is state-keyed).
        assert 1 <= trigger.activations <= 64
        from repro.control.state_machine import RobotState

        first = trigger.first_active_cycle
        # The trigger fired while engaged (allow 1 packet of skew).
        assert trace.states[first - 1] is RobotState.PEDAL_DOWN

    def test_attack_corrupts_physical_state(self, analysis_conclusion):
        reference = run_fault_free(seed=35, duration_s=DURATION)
        library, _ = self._attack_library(analysis_conclusion)
        config = RigConfig(seed=35, duration_s=DURATION,
                           raven_safety_enabled=False)
        trace = SurgicalRig(config, preload_libraries=[library]).run()
        assert trace.max_deviation_from(reference) > constants.UNSAFE_JUMP_M

    def test_detector_preempts_deployed_attack(
        self, analysis_conclusion, loose_thresholds
    ):
        library, trigger = self._attack_library(analysis_conclusion)
        guard = make_detector_guard(
            loose_thresholds, strategy=MitigationStrategy.BLOCK_AND_ESTOP
        )
        config = RigConfig(seed=35, duration_s=DURATION)
        rig = SurgicalRig(config, preload_libraries=[library], guard=guard)
        trace = rig.run()
        assert guard.stats.alerted
        first_alert = guard.stats.first_alert_cycle
        # Detection within a few cycles of the first malicious packet.
        assert first_alert - trigger.first_active_cycle < 20
        # The jump never develops: robot halted safely.
        assert trace.max_jump(window_s=10e-3) < 2 * constants.UNSAFE_JUMP_M

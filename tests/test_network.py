"""Tests for repro.teleop.network and repro.teleop.pedal."""

import numpy as np
import pytest

from repro.teleop.network import (
    ExfiltrationSink,
    LoopbackExfiltration,
    UdpChannel,
    UdpSocket,
)
from repro.teleop.pedal import PedalSchedule


class TestUdpChannel:
    def test_zero_latency_immediate_delivery(self):
        ch = UdpChannel()
        ch.send(b"hello", now=1.0)
        assert ch.receive(1.0) == b"hello"

    def test_latency_delays_delivery(self):
        ch = UdpChannel(latency_s=0.01)
        ch.send(b"x", now=0.0)
        assert ch.receive(0.005) is None
        assert ch.receive(0.011) == b"x"

    def test_fifo_order(self):
        ch = UdpChannel()
        ch.send(b"a", 0.0)
        ch.send(b"b", 0.0)
        assert ch.receive(0.0) == b"a"
        assert ch.receive(0.0) == b"b"

    def test_loss_drops_packets(self, rng):
        ch = UdpChannel(loss_probability=0.5, rng=rng)
        for i in range(200):
            ch.send(bytes([i % 256]), 0.0)
        assert 0 < ch.dropped < 200
        assert ch.pending() == ch.sent - ch.dropped

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            UdpChannel(jitter_s=0.01)

    def test_invalid_loss_rejected(self, rng):
        with pytest.raises(ValueError):
            UdpChannel(loss_probability=1.5, rng=rng)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            UdpChannel(latency_s=-1.0)


class TestUdpSocket:
    def test_recvfrom_none_when_empty(self):
        sock = UdpSocket(UdpChannel(), port=1234)
        assert sock.fd_recvfrom(100) is None

    def test_recvfrom_honours_channel_time(self):
        ch = UdpChannel(latency_s=0.05)
        sock = UdpSocket(ch, port=1234)
        ch.send(b"data", now=0.0)
        sock.set_time(0.01)
        assert sock.fd_recvfrom(100) is None
        sock.set_time(0.06)
        assert sock.fd_recvfrom(100) == b"data"

    def test_truncates_to_max_bytes(self):
        ch = UdpChannel()
        sock = UdpSocket(ch, port=1)
        ch.send(b"abcdef", 0.0)
        assert sock.fd_recvfrom(3) == b"abc"

    def test_fd_read_empty_bytes_when_no_data(self):
        sock = UdpSocket(UdpChannel(), port=1)
        assert sock.fd_read(10) == b""

    def test_fd_write_loops_back(self):
        ch = UdpChannel()
        sock = UdpSocket(ch, port=1)
        sock.fd_write(b"loop")
        assert ch.receive(0.0) == b"loop"


class TestExfiltration:
    def test_sink_records(self):
        sink = ExfiltrationSink()
        sink.fd_write(b"secret")
        assert len(sink) == 1
        assert sink.datagrams[0] == b"secret"

    def test_sink_read_empty(self):
        assert ExfiltrationSink().fd_read(10) == b""

    def test_loopback_roundtrip(self):
        loop = LoopbackExfiltration()
        try:
            loop.fd_write(b"packet-1")
            loop.fd_write(b"packet-2")
            received = loop.drain()
            assert received == [b"packet-1", b"packet-2"]
            assert loop.sent == 2
        finally:
            loop.close()


class TestPedalSchedule:
    def test_default_released(self):
        assert not PedalSchedule().state(10.0)

    def test_pressed_during(self):
        pedal = PedalSchedule.pressed_during(1.0, 2.0)
        assert not pedal.state(0.5)
        assert pedal.state(1.0)
        assert pedal.state(1.9)
        assert not pedal.state(2.0)

    def test_always_down(self):
        pedal = PedalSchedule.always_down(from_time=0.3)
        assert not pedal.state(0.2)
        assert pedal.state(5.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            PedalSchedule.pressed_during(2.0, 1.0)

    def test_edges_between(self):
        pedal = PedalSchedule([(1.0, True), (2.0, False), (3.0, True)])
        edges = pedal.edges_between(0.5, 2.5)
        assert edges == [(1.0, True), (2.0, False)]

    def test_events_sorted(self):
        pedal = PedalSchedule([(2.0, False), (1.0, True)])
        assert pedal.events[0][0] == 1.0

"""Tests for repro.kinematics.jacobian."""

import numpy as np

from repro.kinematics.jacobian import position_jacobian, tip_speed, tip_velocity
from tests.conftest import random_joint_vector


def numeric_jacobian(arm, q, eps=1e-7):
    jac = np.empty((3, 3))
    for i in range(3):
        dq = np.zeros(3)
        dq[i] = eps
        jac[:, i] = (arm.forward(q + dq) - arm.forward(q - dq)) / (2 * eps)
    return jac


class TestPositionJacobian:
    def test_matches_finite_differences(self, arm, rng):
        for _ in range(30):
            q = random_joint_vector(rng)
            analytic = position_jacobian(arm, q)
            numeric = numeric_jacobian(arm, q)
            assert np.allclose(analytic, numeric, atol=1e-6), q

    def test_insertion_column_is_tool_axis(self, arm, rng):
        q = random_joint_vector(rng)
        jac = position_jacobian(arm, q)
        assert np.allclose(jac[:, 2], arm.tool_axis(q[0], q[1]), atol=1e-12)

    def test_joint1_column_orthogonal_to_z(self, arm, rng):
        # Rotation about the (vertical) base axis cannot move the tip
        # vertically.
        q = random_joint_vector(rng)
        jac = position_jacobian(arm, q)
        assert abs(jac[2, 0]) < 1e-12

    def test_columns_scale_with_depth(self, arm):
        q = np.array([0.3, 1.2, 0.1])
        q2 = np.array([0.3, 1.2, 0.2])
        j1 = position_jacobian(arm, q)
        j2 = position_jacobian(arm, q2)
        assert np.allclose(j2[:, 0], 2 * j1[:, 0], atol=1e-12)
        assert np.allclose(j2[:, 1], 2 * j1[:, 1], atol=1e-12)
        assert np.allclose(j2[:, 2], j1[:, 2], atol=1e-12)


class TestTipVelocity:
    def test_pure_insertion_velocity(self, arm, rng):
        q = random_joint_vector(rng)
        v = tip_velocity(arm, q, np.array([0.0, 0.0, 0.02]))
        assert np.allclose(v, 0.02 * arm.tool_axis(q[0], q[1]), atol=1e-12)

    def test_speed_is_norm(self, arm, rng):
        q = random_joint_vector(rng)
        qdot = rng.standard_normal(3) * 0.1
        assert np.isclose(
            tip_speed(arm, q, qdot), np.linalg.norm(tip_velocity(arm, q, qdot))
        )

    def test_zero_rates_zero_velocity(self, arm, rng):
        q = random_joint_vector(rng)
        assert tip_speed(arm, q, np.zeros(3)) == 0.0

"""Property-based tests on the plant and dynamic-model physics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic_model import RavenDynamicModel
from repro.dynamics.friction import FrictionModel
from repro.dynamics.manipulator import ManipulatorDynamics
from repro.dynamics.plant import RavenPlant
from repro.kinematics.workspace import Workspace

joint_vectors = st.tuples(
    st.floats(-1.0, 1.0),
    st.floats(0.5, 2.6),
    st.floats(0.07, 0.28),
).map(np.array)

velocities = st.tuples(
    st.floats(-1.0, 1.0), st.floats(-1.0, 1.0), st.floats(-0.1, 0.1)
).map(np.array)

dac_sequences = st.lists(
    st.tuples(
        st.integers(-32767, 32767),
        st.integers(-32767, 32767),
        st.integers(-32767, 32767),
    ),
    min_size=1,
    max_size=30,
)


class TestPlantProperties:
    @given(commands=dac_sequences)
    @settings(max_examples=25, deadline=None)
    def test_state_always_finite(self, commands):
        """No admissible command sequence drives the plant to NaN/Inf."""
        plant = RavenPlant(initial_jpos=Workspace().neutral())
        plant.release_brakes()
        for dac in commands:
            snapshot = plant.step(np.array(dac, dtype=float))
            assert np.all(np.isfinite(snapshot.jpos))
            assert np.all(np.isfinite(snapshot.jvel))
            assert np.all(np.isfinite(snapshot.currents))

    @given(q=joint_vectors, v=velocities)
    @settings(max_examples=40, deadline=None)
    def test_unforced_motion_dissipates(self, q, v):
        """With zero command and gravity disabled, kinetic energy decays
        (passivity of friction + damping)."""
        dyn = ManipulatorDynamics(include_gravity=False)
        plant = RavenPlant(dynamics=dyn, initial_jpos=q)
        plant.release_brakes()
        plant.set_state(q, v)

        def kinetic(p):
            m = dyn.mass_matrix(p.jpos) + p.transmission.reflected_inertia(
                [mm.rotor_inertia for mm in p.motors]
            )
            return 0.5 * p.jvel @ m @ p.jvel

        e0 = kinetic(plant)
        for _ in range(30):
            plant.step([0, 0, 0])
        assert kinetic(plant) <= e0 + 1e-12

    @given(q=joint_vectors)
    @settings(max_examples=40, deadline=None)
    def test_mass_matrix_spd_everywhere(self, q):
        dyn = ManipulatorDynamics()
        m = dyn.mass_matrix(q)
        assert np.allclose(m, m.T, atol=1e-12)
        assert np.min(np.linalg.eigvalsh(m)) > 0

    @given(qdot=velocities)
    @settings(max_examples=60, deadline=None)
    def test_friction_dissipates_power(self, qdot):
        """Friction power qdot . f(qdot) is non-negative for any motion."""
        friction = FrictionModel()
        assert float(qdot @ friction.torque(qdot)) >= 0.0


class TestModelProperties:
    @given(q=joint_vectors, v=velocities, dac=st.tuples(
        st.integers(-32767, 32767),
        st.integers(-32767, 32767),
        st.integers(-32767, 32767),
    ))
    @settings(max_examples=40, deadline=None)
    def test_one_step_prediction_finite_and_close(self, q, v, dac):
        """One 1 ms model step stays finite and close to the start state
        (nothing physical moves far in a millisecond)."""
        model = RavenDynamicModel()
        jpos, jvel = model.step(q, v, np.array(dac, dtype=float))
        assert np.all(np.isfinite(jpos)) and np.all(np.isfinite(jvel))
        assert np.linalg.norm(jpos - q) < 0.02

    @given(q=joint_vectors, v=velocities)
    @settings(max_examples=40, deadline=None)
    def test_determinism(self, q, v):
        model = RavenDynamicModel()
        a = model.step(q, v, [1000, -1000, 500])
        b = model.step(q, v, [1000, -1000, 500])
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

"""Tests for the exception hierarchy (API stability contract)."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_ik_error_is_kinematics_error(self):
        assert issubclass(errors.InverseKinematicsError, errors.KinematicsError)
        assert issubclass(errors.WorkspaceError, errors.KinematicsError)

    def test_checksum_error_is_packet_error(self):
        assert issubclass(errors.ChecksumError, errors.PacketError)

    def test_integration_error_is_dynamics_error(self):
        assert issubclass(errors.IntegrationError, errors.DynamicsError)

    def test_single_except_catches_everything(self):
        for exc_type in (
            errors.InverseKinematicsError,
            errors.ChecksumError,
            errors.SyscallError,
            errors.AttackConfigError,
            errors.DetectorError,
            errors.SimulationError,
        ):
            with pytest.raises(errors.ReproError):
                raise exc_type("boom")

    def test_extension_errors_fit_the_hierarchy(self):
        from repro.hw.bitw import BitwError
        from repro.teleop.secure_itp import AuthenticationError

        assert issubclass(BitwError, errors.PacketError)
        assert issubclass(AuthenticationError, errors.PacketError)

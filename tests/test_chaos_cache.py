"""Chaos tests for the sharded campaign cache and campaign-level recovery.

Each test injects one fault class into a real (tiny) campaign and
asserts the acceptance contract: the fault ends in a **correct, complete
campaign result** — bit-identical to an undisturbed run — or, when the
fault is made unrecoverable on purpose, in a clean typed error whose
resume is bit-identical.
"""

from __future__ import annotations

import pytest

from repro.attacks.campaign import CampaignRunner
from repro.errors import TaskExecutionError
from repro.experiments.campaigns import campaign_cache_path, get_campaign
from repro.experiments.scale import Scale
from repro.testing import ChaosInjector, FaultPlan, FaultSpec, campaign_fingerprint
from repro.testing.faults import ALWAYS

pytestmark = [pytest.mark.chaos, pytest.mark.campaign]

TINY = Scale(
    name="tiny-chaos",
    training_runs=1,
    training_duration_s=0.7,
    errors_a_mm=(0.1,),
    errors_b_dac=(26000,),
    periods_ms=(16, 64),
    repetitions=1,
    fault_free_runs=1,
    run_duration_s=0.7,
    validation_runs=1,
    validation_duration_s=0.7,
    syscall_samples=10,
    capture_runs=1,
    capture_duration_s=0.7,
)


def _get(tmp_path, jobs=1, **kwargs):
    return get_campaign("B", TINY, cache_dir=tmp_path, jobs=jobs, **kwargs)


def _injector(*specs):
    return ChaosInjector(FaultPlan(list(specs)))


class TestShardCorruption:
    """Damaged shards are quarantined and recomputed, never trusted."""

    def _assert_recovers(self, tmp_path, damage, expect_quarantine=True):
        first = _get(tmp_path)
        shard_dir = campaign_cache_path("B", TINY, tmp_path)
        shard = shard_dir / "cell_0000.json"
        damage(shard)
        recovered = _get(tmp_path)
        assert recovered.outcomes == first.outcomes
        assert shard.exists()  # the recomputed cell re-checkpointed
        # The damaged file was preserved as evidence, not re-read.
        assert (shard_dir / "quarantine" / shard.name).exists() == expect_quarantine

    def test_truncated_shard(self, tmp_path):
        def truncate(shard):
            data = shard.read_bytes()
            shard.write_bytes(data[: len(data) // 2])

        self._assert_recovers(tmp_path, truncate)

    def test_bit_flipped_payload(self, tmp_path):
        # Flip one bit deep inside the outcomes body: the JSON still
        # parses and the envelope is intact, so only the body-integrity
        # digest can catch it.
        def bitflip(shard):
            data = bytearray(shard.read_bytes())
            target = next(
                i for i in range(len(data) // 2, len(data))
                if chr(data[i]).isdigit()
            )
            data[target] ^= 0x01  # e.g. '4' <-> '5': still valid JSON
            shard.write_bytes(bytes(data))

        self._assert_recovers(tmp_path, bitflip)

    def test_shard_deleted(self, tmp_path):
        self._assert_recovers(
            tmp_path, lambda shard: shard.unlink(), expect_quarantine=False
        )

    def test_stale_meta_invalidates_and_recomputes(self, tmp_path, monkeypatch):
        # The injector stamps a stale schema version onto meta.json the
        # moment it is written; the next call must invalidate the whole
        # directory and still produce the same campaign.
        inj = _injector(FaultSpec(kind="stale_meta", match="meta.json"))
        first = _get(tmp_path, injector=inj)

        reran = []
        original = CampaignRunner.run_cell_once

        def counting(self, cell, seed):
            reran.append(cell.period_ms)
            return original(self, cell, seed)

        monkeypatch.setattr(CampaignRunner, "run_cell_once", counting)
        again = _get(tmp_path)
        assert again.outcomes == first.outcomes
        assert sorted(reran) == [16, 64]  # every cell re-ran

    def test_shard_deleted_mid_run_by_injector(self, tmp_path):
        # A shard vanishes right after its checkpoint write: the running
        # campaign still returns a complete result (outcomes are merged
        # in memory), and the next resume recomputes only the lost cell.
        inj = _injector(FaultSpec(kind="delete", match="cell_0001.json"))
        first = _get(tmp_path, injector=inj)
        shard_dir = campaign_cache_path("B", TINY, tmp_path)
        assert not (shard_dir / "cell_0001.json").exists()
        assert len(first.outcomes) == 3  # 2 cells x 1 rep + 1 fault-free
        resumed = _get(tmp_path)
        assert resumed.outcomes == first.outcomes
        assert (shard_dir / "cell_0001.json").exists()

    def test_truncate_fault_via_injector_then_resume(self, tmp_path):
        inj = _injector(FaultSpec(kind="truncate", match="cell_0000.json"))
        first = _get(tmp_path, injector=inj)
        resumed = _get(tmp_path)
        assert resumed.outcomes == first.outcomes


class TestCampaignFaultTolerance:
    """Worker-level faults during a campaign's fan-out."""

    def test_task_exception_retried_campaign_completes(self, tmp_path, tmp_path_factory):
        inj = _injector(FaultSpec(kind="raise", index=0, times=1))
        chaotic = _get(tmp_path, jobs=2, injector=inj)
        clean = _get(tmp_path_factory.mktemp("clean"))
        assert chaotic.outcomes == clean.outcomes

    def test_worker_crash_mid_campaign_then_resume_bit_identical(
        self, tmp_path, tmp_path_factory, monkeypatch
    ):
        """The satellite crash-recovery contract: SIGKILL a worker
        mid-campaign, let the run die, and assert the resumed run is
        bit-identical to an uninterrupted serial run."""
        monkeypatch.setenv("REPRO_TASK_RETRIES", "0")  # crash is fatal
        inj = _injector(FaultSpec(kind="crash", index=1, times=ALWAYS))
        with pytest.raises(TaskExecutionError):
            _get(tmp_path, jobs=2, injector=inj)

        # Resume without chaos (and with the default retry budget).
        monkeypatch.delenv("REPRO_TASK_RETRIES")
        resumed = _get(tmp_path, jobs=2)

        serial = _get(tmp_path_factory.mktemp("serial"), jobs=1)
        assert resumed.outcomes == serial.outcomes
        assert campaign_fingerprint(resumed) == campaign_fingerprint(serial)

    def test_crash_with_retry_budget_degrades_and_completes(
        self, tmp_path, tmp_path_factory
    ):
        # One SIGKILL, default retry budget: the pool dies, the engine
        # degrades to serial, and the campaign result is still correct.
        inj = _injector(FaultSpec(kind="crash", index=0, times=1))
        chaotic = _get(tmp_path, jobs=2, injector=inj)
        clean = _get(tmp_path_factory.mktemp("clean2"))
        assert chaotic.outcomes == clean.outcomes


class TestThresholdCacheCorruption:
    def test_corrupt_thresholds_cache_retrains(self, tmp_path):
        from repro.experiments.calibration import (
            get_thresholds,
            thresholds_cache_path,
        )

        first = get_thresholds(TINY, cache_dir=tmp_path)
        path = thresholds_cache_path(TINY, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        import numpy as np

        again = get_thresholds(TINY, cache_dir=tmp_path)
        assert np.array_equal(again.motor_velocity, first.motor_velocity)

"""Tests for repro.attacks.analysis (the offline analysis phase)."""

import numpy as np
import pytest

from repro import constants
from repro.attacks.analysis import (
    OfflineAnalysis,
    byte_cardinalities,
    byte_value_series,
    find_watchdog_bit,
    infer_state_byte,
    infer_state_sequence,
)
from repro.control.state_machine import RobotState
from repro.errors import AttackConfigError
from repro.hw.usb_packet import encode_command_packet


def synthetic_capture(segments, watchdog_half_period=8, dac_seed=0):
    """Build packets walking through (state, length) segments."""
    rng = np.random.default_rng(dac_seed)
    packets = []
    level = False
    count = 0
    for state, length in segments:
        for _ in range(length):
            count += 1
            if count % watchdog_half_period == 0:
                level = not level
            dac = (
                list(rng.integers(-6000, 6000, 3))
                if state is RobotState.PEDAL_DOWN
                else [0, 0, 0]
            )
            packets.append(encode_command_packet(state, level, dac))
    return packets


SESSION = [
    (RobotState.E_STOP, 60),
    (RobotState.INIT, 150),
    (RobotState.PEDAL_UP, 120),
    (RobotState.PEDAL_DOWN, 700),
    (RobotState.PEDAL_UP, 80),
    (RobotState.PEDAL_DOWN, 300),
]


class TestSeriesHelpers:
    def test_byte_value_series_shape(self):
        packets = synthetic_capture(SESSION)
        series = byte_value_series(packets)
        assert series.shape == (len(packets), constants.USB_PACKET_SIZE)

    def test_empty_capture_rejected(self):
        with pytest.raises(AttackConfigError):
            byte_value_series([])

    def test_mixed_lengths_rejected(self):
        with pytest.raises(AttackConfigError):
            byte_value_series([b"\x00" * 18, b"\x00" * 26])

    def test_cardinalities(self):
        packets = synthetic_capture(SESSION)
        cards = byte_cardinalities(byte_value_series(packets))
        assert cards[0] == 8  # 4 states x 2 watchdog levels
        # Unused channels stay constant.
        assert cards[8] == 1


class TestWatchdogDiscovery:
    def test_finds_configured_bit(self):
        series = byte_value_series(synthetic_capture(SESSION))
        assert find_watchdog_bit(series, 0) == constants.USB_WATCHDOG_BIT

    def test_none_when_no_periodic_bit(self):
        # A constant byte has no periodic bit.
        series = np.zeros((500, 18), dtype=np.uint8)
        assert find_watchdog_bit(series, 7) is None

    def test_irregular_toggling_rejected(self, rng):
        # Random toggling has a high interval CV.
        series = np.zeros((500, 18), dtype=np.uint8)
        series[:, 3] = rng.integers(0, 2, 500) << 2
        assert find_watchdog_bit(series, 3, max_interval_cv=0.05) is None


class TestStateByteInference:
    def test_identifies_byte0(self):
        series = byte_value_series(synthetic_capture(SESSION))
        inference = infer_state_byte(series)
        assert inference.byte_index == constants.USB_STATE_BYTE
        assert inference.watchdog_bit == constants.USB_WATCHDOG_BIT
        assert set(inference.masked_values) == {
            constants.STATE_BYTE_ESTOP,
            constants.STATE_BYTE_INIT,
            constants.STATE_BYTE_PEDAL_UP,
            constants.STATE_BYTE_PEDAL_DOWN,
        }

    def test_no_candidate_raises(self):
        series = np.zeros((100, 18), dtype=np.uint8)  # all constant
        with pytest.raises(AttackConfigError):
            infer_state_byte(series)

    def test_exclude_skips_bytes(self):
        series = byte_value_series(synthetic_capture(SESSION))
        with pytest.raises(AttackConfigError):
            # Excluding Byte 0 leaves no step-like low-cardinality byte.
            infer_state_byte(series, exclude=[0])


class TestStateSequence:
    def test_labels_follow_first_appearance(self):
        series = byte_value_series(synthetic_capture(SESSION))
        mapping, segments = infer_state_sequence(
            series, 0, constants.USB_WATCHDOG_BIT
        )
        assert mapping[constants.STATE_BYTE_ESTOP] == "E-STOP"
        assert mapping[constants.STATE_BYTE_PEDAL_DOWN] == "Pedal Down"
        names = [name for _s, _e, name in segments]
        assert names == [
            "E-STOP", "Init", "Pedal Up", "Pedal Down", "Pedal Up", "Pedal Down",
        ]

    def test_segment_lengths_match(self):
        series = byte_value_series(synthetic_capture(SESSION))
        _mapping, segments = infer_state_sequence(
            series, 0, constants.USB_WATCHDOG_BIT
        )
        assert segments[0][1] - segments[0][0] == 60
        assert segments[3][1] - segments[3][0] == 700


class TestOfflineAnalysis:
    def test_conclusion_over_multiple_runs(self):
        analysis = OfflineAnalysis()
        for seed in range(5):
            analysis.add_run(synthetic_capture(SESSION, dac_seed=seed))
        conclusion = analysis.conclude()
        assert conclusion.state_byte == 0
        assert conclusion.watchdog_bit == constants.USB_WATCHDOG_BIT
        assert conclusion.pedal_down_raw_values == frozenset(
            {0x0F, 0x0F | (1 << constants.USB_WATCHDOG_BIT)}
        )
        assert conclusion.runs_analyzed == 5

    def test_no_runs_raises(self):
        with pytest.raises(AttackConfigError):
            OfflineAnalysis().conclude()

    def test_pedal_down_never_seen_raises(self):
        analysis = OfflineAnalysis()
        analysis.add_run(
            synthetic_capture(
                [(RobotState.E_STOP, 100), (RobotState.INIT, 100),
                 (RobotState.PEDAL_UP, 400)]
            )
        )
        with pytest.raises(AttackConfigError):
            analysis.conclude()

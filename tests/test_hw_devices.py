"""Tests for repro.hw: encoders, motor controller, PLC, USB board."""

import numpy as np
import pytest

from repro.control.state_machine import RobotState
from repro.dynamics.plant import RavenPlant
from repro.hw.encoder import EncoderBank
from repro.hw.motor_controller import MotorController
from repro.hw.plc import Plc
from repro.hw.usb_board import UsbBoard
from repro.hw.usb_packet import (
    decode_feedback_packet,
    encode_command_packet,
)
from repro.kinematics.workspace import Workspace


@pytest.fixture
def stack():
    """plant + motor controller + PLC + USB board, brakes released."""
    plant = RavenPlant(initial_jpos=Workspace().neutral())
    mc = MotorController(plant)
    plc = Plc(plant, mc)
    board = UsbBoard(mc, plc)
    plant.release_brakes()
    return plant, mc, plc, board


class TestEncoderBank:
    def test_roundtrip_within_resolution(self, rng):
        bank = EncoderBank()
        mpos = rng.uniform(-50, 50, 3)
        recovered = bank.to_radians(bank.to_counts(mpos))
        assert np.allclose(recovered, mpos, atol=bank.resolution_rad)

    def test_quantization_is_integer(self, rng):
        bank = EncoderBank()
        counts = bank.to_counts(rng.uniform(-1, 1, 3))
        assert counts.dtype == np.int64

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError):
            EncoderBank(noise_counts=1.0)

    def test_noise_changes_counts(self, rng):
        bank = EncoderBank(noise_counts=5.0, rng=rng)
        mpos = np.array([1.0, 2.0, 3.0])
        a = bank.to_counts(mpos)
        b = bank.to_counts(mpos)
        assert not np.array_equal(a, b)

    def test_invalid_cpr_rejected(self):
        with pytest.raises(ValueError):
            EncoderBank(counts_per_rev=0)


class TestMotorController:
    def test_latch_and_tick_drives_plant(self, stack):
        plant, mc, _plc, _board = stack
        q0 = plant.jpos.copy()
        mc.latch([10000, 0, 0])
        for _ in range(50):
            mc.tick()
        assert plant.jpos[0] != q0[0]

    def test_power_off_zeroes_command(self, stack):
        _plant, mc, _plc, _board = stack
        mc.latch([10000, 0, 0])
        mc.power_off()
        assert np.allclose(mc.latched_dac, 0.0)
        assert not mc.powered

    def test_power_on_restores(self, stack):
        _plant, mc, _plc, _board = stack
        mc.power_off()
        mc.power_on()
        assert mc.powered

    def test_only_first_three_channels_latched(self, stack):
        _plant, mc, _plc, _board = stack
        mc.latch([1, 2, 3, 4, 5, 6, 7, 8])
        assert np.allclose(mc.latched_dac, [1, 2, 3])


class TestPlc:
    def test_brakes_follow_state(self, stack):
        plant, _mc, plc, _board = stack
        plc.observe_packet(RobotState.PEDAL_UP, True)
        plc.tick()
        assert plant.brakes_engaged or plant.brakes_engaging
        plc.observe_packet(RobotState.PEDAL_DOWN, True)
        plc.tick()
        assert not plant.brakes_engaged

    def test_watchdog_timeout_latches_estop(self, stack):
        _plant, _mc, plc, _board = stack
        plc.observe_packet(RobotState.PEDAL_DOWN, True)
        # Watchdog frozen at one level: no more edges.
        for _ in range(plc.watchdog_timeout_cycles + 2):
            plc.observe_packet(RobotState.PEDAL_DOWN, True)
            plc.tick()
        assert plc.estop_latched
        assert "watchdog" in plc.estop_reason

    def test_toggling_watchdog_keeps_running(self, stack):
        _plant, _mc, plc, _board = stack
        level = False
        for i in range(100):
            if i % 8 == 0:
                level = not level
            plc.observe_packet(RobotState.PEDAL_DOWN, level)
            plc.tick()
        assert not plc.estop_latched

    def test_estop_cuts_motor_power_and_brakes(self, stack):
        plant, mc, plc, _board = stack
        plc.trigger_estop("test")
        assert not mc.powered
        assert plant.brakes_engaged or plant.brakes_engaging

    def test_clear_estop(self, stack):
        _plant, mc, plc, _board = stack
        plc.trigger_estop("test")
        plc.clear_estop()
        assert not plc.estop_latched
        assert mc.powered

    def test_invalid_timeout_rejected(self, stack):
        plant, mc, _plc, _board = stack
        with pytest.raises(ValueError):
            Plc(plant, mc, watchdog_timeout_cycles=1)


class TestUsbBoard:
    def test_write_latches_dac(self, stack):
        _plant, mc, _plc, board = stack
        data = encode_command_packet(RobotState.PEDAL_DOWN, True, [1500, -700, 300])
        board.fd_write(data)
        assert np.allclose(mc.latched_dac, [1500, -700, 300])
        assert board.packets_received == 1

    def test_no_integrity_check_executes_corrupted_packet(self, stack):
        """The vulnerability: tampered packets execute unchecked."""
        _plant, mc, _plc, board = stack
        data = bytearray(
            encode_command_packet(RobotState.PEDAL_DOWN, True, [100, 0, 0])
        )
        data[1] = 0x30  # forge channel-0 high byte; checksum now stale
        board.fd_write(bytes(data))
        assert mc.latched_dac[0] == 0x3000 + 100

    def test_malformed_length_dropped(self, stack):
        _plant, _mc, _plc, board = stack
        board.fd_write(b"\x01\x02\x03")
        assert board.malformed_packets == 1
        assert board.packets_received == 0

    def test_state_forwarded_to_plc(self, stack):
        _plant, _mc, plc, board = stack
        board.fd_write(encode_command_packet(RobotState.PEDAL_DOWN, True, []))
        assert plc.observed_state is RobotState.PEDAL_DOWN

    def test_read_returns_encoder_feedback(self, stack):
        plant, _mc, _plc, board = stack
        board.fd_write(encode_command_packet(RobotState.PEDAL_DOWN, True, []))
        feedback = decode_feedback_packet(board.fd_read(26))
        expected = board.encoders.to_counts(plant.mpos)
        assert feedback.encoder_counts[:3] == list(expected)

    def test_guard_blocks_execution(self, stack):
        _plant, mc, _plc, board = stack
        board.guard = lambda packet, raw: False
        board.fd_write(encode_command_packet(RobotState.PEDAL_DOWN, True, [9000, 0, 0]))
        assert np.allclose(mc.latched_dac, 0.0)
        assert board.packets_blocked == 1

    def test_guard_allows_execution(self, stack):
        _plant, mc, _plc, board = stack
        board.guard = lambda packet, raw: True
        board.fd_write(encode_command_packet(RobotState.PEDAL_DOWN, True, [9000, 0, 0]))
        assert mc.latched_dac[0] == 9000

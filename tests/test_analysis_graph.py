"""Tests for the whole-program analysis layer: project graph, CFG
dominance, the interprocedural rules RPR005–RPR008, the summary cache,
and ``--diff`` scoping."""

from __future__ import annotations

import ast
import dataclasses
import json
import textwrap
from pathlib import Path

from repro.analysis import AnalysisEngine, DEFAULT_CONFIG
from repro.analysis.__main__ import main
from repro.analysis.graph.cfg import ControlFlowGraph
from repro.analysis.graph.project import ProjectGraph, element_type, strip_wrappers
from repro.analysis.graph.summary import build_summary, expr_chain
from repro.analysis.source import ModuleSource

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_ROOT = REPO_ROOT / "tests" / "analysis_fixtures"

#: Whole-program config pointed at the fixture packages: badpkg's
#: ingest/gate/lifecycle/parity/quarantine shapes violate RPR005–RPR008
#: on purpose, goodpkg's are clean.
GRAPH_CONFIG = dataclasses.replace(
    DEFAULT_CONFIG,
    dac_sink_allowed_modules=("tests.analysis_fixtures",),
    guard_hook_allowed_modules=("tests.analysis_fixtures",),
    ingest_entry_points=(
        "tests.analysis_fixtures.badpkg.ingestion.FeedRouter.ingest",
        # An entry that is itself a gate: the reachability walk skips it.
        "tests.analysis_fixtures.goodpkg.guarded.GatedBoard.fd_write",
    ),
    safety_gate_functions=(
        "tests.analysis_fixtures.badpkg.ingestion.GateKeeper.vet",
    ),
    lifecycle_scope=(
        "tests.analysis_fixtures.badpkg.lifecycle",
        "tests.analysis_fixtures.goodpkg",
    ),
    parity_scope=(
        "tests.analysis_fixtures.badpkg.mirrors",
        "tests.analysis_fixtures.goodpkg",
    ),
    quarantine_scope=(
        "tests.analysis_fixtures.badpkg.quarantine",
        "tests.analysis_fixtures.badpkg.wireops",
    ),
    integrity_error_names=("FrameIntegrityError", "FrameCorruptionError"),
    integrity_fallback_modules=(),
)


def run_graph(*names: str, config=GRAPH_CONFIG, **kwargs):
    engine = AnalysisEngine(config=config)
    paths = [FIXTURE_ROOT / name for name in names]
    return engine.analyze_paths(paths, display_root=REPO_ROOT, **kwargs)


def rule_lines(findings):
    return sorted((f.rule_id, f.line) for f in findings)


# ---------------------------------------------------------------------------
# RPR005–RPR008 over the fixture packages — exact ids and lines
# ---------------------------------------------------------------------------


def test_rpr005_ingestion_fixture():
    result = run_graph("badpkg/ingestion.py")
    assert rule_lines(result.findings) == [
        ("RPR005", 15),  # Driver.emit sink, reachable ungated from ingest
        ("RPR005", 36),  # GateKeeper.sloppy latches before its guard call
    ]
    reach, dominance = result.findings
    assert "without a detector gate" in reach.message
    assert (
        "FeedRouter.ingest -> tests.analysis_fixtures.badpkg.ingestion."
        "Relay.forward -> tests.analysis_fixtures.badpkg.ingestion."
        "Driver.emit" in reach.message
    )
    assert "not dominated by the detector gate call" in dominance.message


def test_rpr006_lifecycle_fixture():
    result = run_graph("badpkg/lifecycle.py")
    assert rule_lines(result.findings) == [
        ("RPR006", 10),  # dropped: missing from snapshot/restore
        ("RPR006", 10),  # dropped: missing from reset too
        ("RPR006", 11),  # cursor: checkpointed but missing from reset
    ]
    messages = sorted(f.message for f in result.findings)
    assert "'cursor'" in messages[0] and "reset()" in messages[0]
    assert "'dropped'" in messages[1] and "reset()" in messages[1]
    assert "'dropped'" in messages[2] and "restore()/snapshot()" in messages[2]
    # depth (derived from a parameter) and _obs_hook (wiring glob) are
    # exempt — no findings on lines 8 or 12.


def test_rpr007_mirrors_fixture():
    result = run_graph("badpkg/mirrors.py")
    assert rule_lines(result.findings) == [
        ("RPR007", 22),  # WINDOW constant drift (16 vs 8)
        ("RPR007", 22),  # missing drain() counterpart
    ]
    messages = sorted(f.message for f in result.findings)
    assert "constant 'WINDOW' drifted" in messages[0]
    assert "(16)" in messages[0] and "(8)" in messages[0]
    assert "lacks a counterpart for scalar method" in messages[1]
    assert "Sampler.drain" in messages[1]
    # sample() matches by name and snapshot() via the lane_state alias.


def test_rpr008_quarantine_fixture():
    result = run_graph("badpkg/quarantine.py")
    assert rule_lines(result.findings) == [
        ("RPR008", 21),  # broad except: pass inside the lane loop
        ("RPR008", 27),  # StoreError (ancestor of the integrity error)
    ]
    broad, integrity = result.findings
    assert "swallows lane-path exceptions" in broad.message
    assert "swallows integrity error 'StoreError'" in integrity.message
    # isolated() routes to self.faults (a quarantine sink) and reread()
    # re-raises — neither is reported.


def test_rpr008_wireops_fixture():
    """The service-boundary shape: connection handlers must journal or
    re-raise, exactly like the lane handlers (``repro.service.worker``
    is held to this in-tree)."""
    result = run_graph("badpkg/wireops.py")
    assert rule_lines(result.findings) == [
        ("RPR008", 21),  # broad except: pass inside the connection loop
        ("RPR008", 27),  # WireError (ancestor of the corruption error)
    ]
    broad, integrity = result.findings
    assert "swallows lane-path exceptions" in broad.message
    assert "swallows integrity error 'WireError'" in integrity.message
    # dispatch() routes to self.faults (the worker fault journal — a
    # quarantine sink) and reframe() re-raises — neither is reported.


def test_goodpkg_guarded_is_clean():
    result = run_graph("goodpkg/guarded.py")
    assert result.findings == []
    assert result.suppressed == []


def test_project_rule_findings_are_suppressible(tmp_path):
    src = tmp_path / "laneops.py"
    src.write_text(
        textwrap.dedent(
            """
            def sweep(lanes):
                for lane in lanes:
                    try:
                        lane.step()
                    except Exception:  # repro: allow[RPR008]
                        pass
            """
        )
    )
    config = dataclasses.replace(DEFAULT_CONFIG, quarantine_scope=("laneops",))
    result = AnalysisEngine(config=config).analyze_paths(
        [src], display_root=tmp_path
    )
    assert result.findings == []
    assert rule_lines(result.suppressed) == [("RPR008", 6)]


def test_src_tree_has_no_rpr005_findings():
    """The acceptance bar: no un-waived safety-path findings in-tree."""
    engine = AnalysisEngine()
    result = engine.analyze_paths([REPO_ROOT / "src"], display_root=REPO_ROOT)
    assert [f.format() for f in result.findings if f.rule_id == "RPR005"] == []


# ---------------------------------------------------------------------------
# CFG construction and dominance
# ---------------------------------------------------------------------------


def _cfg(src: str) -> ControlFlowGraph:
    fn = ast.parse(textwrap.dedent(src)).body[0]
    return ControlFlowGraph.build(fn)


def _site(cfg: ControlFlowGraph, name: str):
    for call in cfg.calls():
        chain = expr_chain(call.func)
        if chain and chain[-1] == name:
            return cfg.call_site(call)
    raise AssertionError(f"no call through {name!r}")


def test_cfg_same_block_ordering():
    cfg = _cfg(
        """
        def f(guard, sink):
            guard()
            sink()
        """
    )
    assert cfg.dominates(_site(cfg, "guard"), _site(cfg, "sink"))
    assert not cfg.dominates(_site(cfg, "sink"), _site(cfg, "guard"))


def test_cfg_if_test_dominates_both_branches():
    cfg = _cfg(
        """
        def f(guard, sink, other):
            if guard():
                sink()
            else:
                other()
        """
    )
    assert cfg.dominates(_site(cfg, "guard"), _site(cfg, "sink"))
    assert cfg.dominates(_site(cfg, "guard"), _site(cfg, "other"))


def test_cfg_branch_does_not_dominate_join():
    cfg = _cfg(
        """
        def f(cond, guard, sink):
            if cond:
                guard()
            sink()
        """
    )
    assert not cfg.dominates(_site(cfg, "guard"), _site(cfg, "sink"))


def test_cfg_loop_body_does_not_dominate_exit():
    cfg = _cfg(
        """
        def f(items, guard, sink):
            for item in items:
                guard()
            sink()
        """
    )
    assert not cfg.dominates(_site(cfg, "guard"), _site(cfg, "sink"))


def test_cfg_preheader_dominates_loop_body():
    cfg = _cfg(
        """
        def f(items, guard, sink):
            guard()
            for item in items:
                sink()
        """
    )
    assert cfg.dominates(_site(cfg, "guard"), _site(cfg, "sink"))


def test_cfg_try_body_does_not_dominate_handler():
    """Any try-body statement may raise before the gate runs."""
    cfg = _cfg(
        """
        def f(guard, sink):
            try:
                guard()
            except ValueError:
                sink()
        """
    )
    assert not cfg.dominates(_site(cfg, "guard"), _site(cfg, "sink"))


def test_cfg_dead_code_is_vacuously_dominated():
    """Unreachable sinks keep the full dominator set — never reported."""
    cfg = _cfg(
        """
        def f(cond, guard, sink):
            if cond:
                guard()
            return None
            sink()
        """
    )
    assert cfg.dominates(_site(cfg, "guard"), _site(cfg, "sink"))


# ---------------------------------------------------------------------------
# Chains and call resolution through the project graph
# ---------------------------------------------------------------------------


def test_expr_chain_markers():
    def chain_of(src: str):
        call = ast.parse(src, mode="eval").body
        assert isinstance(call, ast.Call)
        return expr_chain(call.func)

    assert chain_of("self.lanes[i].guard.evaluate(x)") == [
        "self", "lanes", "[]", "guard", "evaluate",
    ]
    assert chain_of("store().save(x)") == ["store", "()", "save"]
    assert chain_of("(a or b).save(x)") is None


def test_annotation_helpers():
    assert strip_wrappers("Optional['Lane']") == "Lane"
    assert strip_wrappers('typing.Final["Lane"]') == "Lane"
    assert element_type("Dict[str, Lane]") == "Lane"
    assert element_type("List[Lane]") == "Lane"
    assert element_type("Lane") is None


def _graph_for(tmp_path: Path, sources):
    summaries = {}
    for name, src in sources.items():
        path = tmp_path / f"{name}.py"
        path.write_text(textwrap.dedent(src))
        module = ModuleSource.load(path, display_root=tmp_path)
        summaries[module.module] = build_summary(module, DEFAULT_CONFIG)
    return ProjectGraph(summaries)


def test_resolve_call_through_self_params_and_containers(tmp_path):
    graph = _graph_for(
        tmp_path,
        {
            "planes": """
            from typing import Dict

            class Lane:
                def step(self):
                    return 1

            class Pool:
                def __init__(self, lanes: "Dict[str, Lane]", first: "Lane"):
                    self.lanes = lanes
                    self.first = first

                def lookup(self, key):
                    return self.lanes[key].step()

                def direct(self):
                    return self.first.step()

            def make_lane() -> "Lane":
                return Lane()

            def churn():
                return make_lane().step()

            def fresh():
                return Lane().step()
            """
        },
    )
    resolve = graph.resolve_call
    # self attr → Dict value type → [] → method
    assert (
        resolve("planes", "Pool.lookup", ["self", "lanes", "[]", "step"])
        == "planes.Lane.step"
    )
    # self attr typed by the parameter annotation it was assigned from
    assert (
        resolve("planes", "Pool.direct", ["self", "first", "step"])
        == "planes.Lane.step"
    )
    # function return annotation, then method
    assert (
        resolve("planes", "churn", ["make_lane", "()", "step"])
        == "planes.Lane.step"
    )
    # constructor call stays on the class, then method
    assert (
        resolve("planes", "fresh", ["Lane", "()", "step"])
        == "planes.Lane.step"
    )
    # unresolvable chains are silent, not wrong
    assert resolve("planes", "fresh", ["mystery", "()", "step"]) is None


def test_resolve_type_and_reverse_imports_across_modules(tmp_path):
    graph = _graph_for(
        tmp_path,
        {
            "gadgets": """
            class Widget:
                def poke(self):
                    return 1
            """,
            "uses": """
            from gadgets import Widget

            def handle(w: "Widget"):
                return w.poke()
            """,
            "bystander": """
            def idle():
                return 0
            """,
        },
    )
    assert graph.resolve_type("uses", "Widget") == "gadgets.Widget"
    assert (
        graph.resolve_call("uses", "handle", ["w", "poke"])
        == "gadgets.Widget.poke"
    )
    assert graph.importers_of({"gadgets"}) == {"gadgets", "uses"}
    assert graph.importers_of({"bystander"}) == {"bystander"}


# ---------------------------------------------------------------------------
# Summary cache: warm runs parse nothing, edits invalidate one file
# ---------------------------------------------------------------------------


def _seed_tree(tmp_path: Path) -> Path:
    src = tmp_path / "proj"
    src.mkdir()
    (src / "alpha.py").write_text("def f(board, v):\n    board._latch(v)\n")
    (src / "beta.py").write_text("def g():\n    return 1\n")
    return src


_NO_SINKS = dataclasses.replace(DEFAULT_CONFIG, dac_sink_allowed_modules=())


def test_cache_warm_run_parses_nothing(tmp_path):
    src = _seed_tree(tmp_path)
    cache = tmp_path / "cache"
    cold = AnalysisEngine(config=_NO_SINKS, cache_dir=cache).analyze_paths(
        [src], display_root=tmp_path
    )
    assert sorted(cold.parsed) == ["proj/alpha.py", "proj/beta.py"]
    assert cold.from_cache == 0
    warm = AnalysisEngine(config=_NO_SINKS, cache_dir=cache).analyze_paths(
        [src], display_root=tmp_path
    )
    assert warm.parsed == []
    assert warm.from_cache == 2
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]


def test_cache_edit_invalidates_only_the_edited_file(tmp_path):
    src = _seed_tree(tmp_path)
    cache = tmp_path / "cache"
    AnalysisEngine(config=_NO_SINKS, cache_dir=cache).analyze_paths(
        [src], display_root=tmp_path
    )
    (src / "beta.py").write_text("def g():\n    return 2\n")
    result = AnalysisEngine(config=_NO_SINKS, cache_dir=cache).analyze_paths(
        [src], display_root=tmp_path
    )
    assert result.parsed == ["proj/beta.py"]
    assert result.from_cache == 1


def test_cache_config_change_invalidates_everything(tmp_path):
    src = _seed_tree(tmp_path)
    cache = tmp_path / "cache"
    AnalysisEngine(config=_NO_SINKS, cache_dir=cache).analyze_paths(
        [src], display_root=tmp_path
    )
    result = AnalysisEngine(config=DEFAULT_CONFIG, cache_dir=cache).analyze_paths(
        [src], display_root=tmp_path
    )
    assert sorted(result.parsed) == ["proj/alpha.py", "proj/beta.py"]
    assert result.from_cache == 0


def test_cache_disabled_by_default(tmp_path):
    src = _seed_tree(tmp_path)
    engine = AnalysisEngine(config=_NO_SINKS)
    engine.analyze_paths([src], display_root=tmp_path)
    result = engine.analyze_paths([src], display_root=tmp_path)
    assert sorted(result.parsed) == ["proj/alpha.py", "proj/beta.py"]
    assert result.from_cache == 0


# ---------------------------------------------------------------------------
# --diff scoping: changed files plus transitive reverse importers
# ---------------------------------------------------------------------------


def test_diff_scope_includes_reverse_importers(tmp_path):
    (tmp_path / "core.py").write_text(
        "def f(board, v):\n    board._latch(v)\n"
    )
    (tmp_path / "uses.py").write_text(
        "import core\n\n\ndef g(board, v):\n    board._latch(v)\n"
    )
    (tmp_path / "other.py").write_text(
        "def h(board, v):\n    board._latch(v)\n"
    )
    engine = AnalysisEngine(config=_NO_SINKS)
    full = engine.analyze_paths([tmp_path], display_root=tmp_path)
    assert sorted(f.module for f in full.findings) == ["core", "other", "uses"]
    assert full.scope is None

    narrowed = engine.analyze_paths(
        [tmp_path], display_root=tmp_path, diff=[tmp_path / "core.py"]
    )
    assert narrowed.scope == ["core", "uses"]
    assert sorted(f.module for f in narrowed.findings) == ["core", "uses"]
    # The whole tree was still analyzed — only reporting narrowed.
    assert narrowed.files_scanned == 3


# ---------------------------------------------------------------------------
# CLI: --sarif, --diff, and warm/cold byte-identity
# ---------------------------------------------------------------------------


def test_cli_sarif_artifact(tmp_path, capsys):
    sarif = tmp_path / "analysis.sarif"
    baseline = tmp_path / "baseline.json"
    code = main(
        [
            str(FIXTURE_ROOT / "badpkg" / "actuation.py"),
            "--sarif",
            str(sarif),
            "--baseline",
            str(baseline),
            "--no-cache",
        ]
    )
    assert code == 0
    capsys.readouterr()
    doc = json.loads(sarif.read_text(encoding="utf-8"))
    assert doc["version"] == "2.1.0"
    results = doc["runs"][0]["results"]
    assert results
    assert all(r["ruleId"] == "RPR001" for r in results)
    assert all("reproAnalysis/v1" in r["partialFingerprints"] for r in results)
    rule_ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
    assert rule_ids == ["RPR001"]


def test_cli_diff_narrows_report(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    args = [
        str(FIXTURE_ROOT / "badpkg"),
        "--json",
        "--no-cache",
        "--baseline",
        str(baseline),
    ]
    assert main(args) == 0
    full = json.loads(capsys.readouterr().out)
    full_modules = {f["module"] for f in full["new"]}
    assert "tests.analysis_fixtures.badpkg.poolwork" in full_modules

    changed = str(FIXTURE_ROOT / "badpkg" / "actuation.py")
    assert main(args + ["--diff", changed]) == 0
    narrowed = json.loads(capsys.readouterr().out)
    assert {f["module"] for f in narrowed["new"]} == {
        "tests.analysis_fixtures.badpkg.actuation"
    }


def test_cli_diff_bad_revision_is_usage_error(tmp_path, capsys):
    code = main(
        [
            str(FIXTURE_ROOT / "goodpkg"),
            "--no-cache",
            "--baseline",
            str(tmp_path / "baseline.json"),
            "--diff",
            "definitely-not-a-rev",
        ]
    )
    assert code == 2
    assert "neither a file nor a resolvable git revision" in (
        capsys.readouterr().err
    )


def test_cli_reports_are_byte_identical_cold_and_warm(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    args = [
        str(FIXTURE_ROOT / "badpkg"),
        "--json",
        "--cache-dir",
        str(tmp_path / "cache"),
        "--baseline",
        str(baseline),
    ]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert cold == warm

"""Tests for repro.experiments helpers (scale, report, table2, fig5 logic)."""

import numpy as np
import pytest

from repro.experiments.report import format_float, format_table
from repro.experiments.scale import DEFAULT, PAPER, SMOKE, current_scale
from repro.experiments.table2 import (
    NullUsbDevice,
    OverheadStats,
    build_configurations,
    format_results,
    run_table2,
)


class TestScale:
    def test_default_selected_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() is DEFAULT

    def test_env_selects_preset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale() is SMOKE
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale() is PAPER

    def test_unknown_preset_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "gigantic")
        with pytest.raises(KeyError):
            current_scale()

    def test_paper_matches_paper_numbers(self):
        assert PAPER.training_runs == 600
        assert PAPER.repetitions == 20
        assert 2 in PAPER.periods_ms and 256 in PAPER.periods_ms

    def test_scales_ordered_by_size(self):
        assert SMOKE.training_runs < DEFAULT.training_runs < PAPER.training_runs


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "--" in lines[1]

    def test_format_float(self):
        assert format_float(1.23456, 2) == "1.23"


class TestTable2:
    def test_null_device(self):
        device = NullUsbDevice()
        assert device.fd_write(b"abc") == 3
        assert device.fd_read(4) == b"\x00" * 4

    def test_overhead_stats_from_samples(self):
        stats = OverheadStats.from_samples("x", np.array([1e-6, 3e-6]))
        assert stats.min_us == pytest.approx(1.0)
        assert stats.max_us == pytest.approx(3.0)
        assert stats.mean_us == pytest.approx(2.0)

    def test_configurations_present(self):
        configs = build_configurations()
        assert set(configs) == {"baseline", "logging", "injection"}

    def test_run_table2_shape(self):
        rows = run_table2(samples=2000)
        names = [r.name for r in rows]
        assert names == ["baseline", "logging", "injection"]
        base = rows[0]
        # Wrappers add work; allow slack for scheduler noise on busy hosts.
        assert rows[1].mean_us >= 0.9 * base.mean_us
        assert rows[2].mean_us >= 0.9 * base.mean_us

    def test_format_results_includes_overheads(self):
        rows = run_table2(samples=200)
        text = format_results(rows)
        assert "logging overhead" in text
        assert "injection overhead" in text

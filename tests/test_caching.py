"""Tests for the experiments caching layer (calibration + campaigns)."""

import json

import numpy as np
import pytest

from repro.attacks.campaign import CampaignCell, CampaignResult, RunOutcome
from repro.core.thresholds import SafetyThresholds
from repro.experiments.calibration import (
    get_thresholds,
    thresholds_cache_path,
    write_thresholds_cache,
)
from repro.experiments.campaigns import (
    _outcome_from_dict,
    _outcome_to_dict,
    campaign_cache_path,
)
from repro.experiments.scale import SMOKE, Scale

TINY = Scale(
    name="tiny-test",
    training_runs=1,
    training_duration_s=0.7,
    errors_a_mm=(0.1,),
    errors_b_dac=(20000,),
    periods_ms=(8,),
    repetitions=1,
    fault_free_runs=1,
    run_duration_s=0.7,
    validation_runs=1,
    validation_duration_s=0.7,
    syscall_samples=10,
    capture_runs=1,
    capture_duration_s=0.7,
)


class TestThresholdCaching:
    def test_cache_path_per_scale(self, tmp_path):
        assert "tiny-test" in str(thresholds_cache_path(TINY, tmp_path))
        assert "smoke" in str(thresholds_cache_path(SMOKE, tmp_path))

    def test_trains_and_caches(self, tmp_path):
        thresholds = get_thresholds(TINY, cache_dir=tmp_path)
        path = thresholds_cache_path(TINY, tmp_path)
        assert path.exists()
        # Second call loads the cache (identical values, no retraining).
        again = get_thresholds(TINY, cache_dir=tmp_path)
        assert np.allclose(again.motor_velocity, thresholds.motor_velocity)

    def test_force_retrain_overwrites(self, tmp_path):
        get_thresholds(TINY, cache_dir=tmp_path)
        path = thresholds_cache_path(TINY, tmp_path)
        # Poison the cache, then force retraining.
        poisoned = SafetyThresholds(
            motor_velocity=np.full(3, 1e9),
            motor_acceleration=np.full(3, 1e9),
            joint_velocity=np.full(3, 1e9),
        )
        write_thresholds_cache(path, poisoned, TINY)
        refreshed = get_thresholds(TINY, cache_dir=tmp_path, force_retrain=True)
        assert np.all(refreshed.motor_velocity < 1e6)

    def test_poisoned_cache_loaded_without_force(self, tmp_path):
        path = thresholds_cache_path(TINY, tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        marker = SafetyThresholds(
            motor_velocity=np.full(3, 123.0),
            motor_acceleration=np.full(3, 1.0),
            joint_velocity=np.full(3, 1.0),
        )
        write_thresholds_cache(path, marker, TINY)
        loaded = get_thresholds(TINY, cache_dir=tmp_path)
        assert loaded.motor_velocity[0] == 123.0

    def test_legacy_unversioned_cache_invalidated(self, tmp_path):
        """A raw (pre-engine) thresholds JSON is retrained, not trusted."""
        path = thresholds_cache_path(TINY, tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        legacy = SafetyThresholds(
            motor_velocity=np.full(3, 123.0),
            motor_acceleration=np.full(3, 1.0),
            joint_velocity=np.full(3, 1.0),
        )
        legacy.save(path)  # legacy layout: bare to_dict(), no version
        loaded = get_thresholds(TINY, cache_dir=tmp_path)
        assert loaded.motor_velocity[0] != 123.0

    def test_schema_mismatch_invalidated(self, tmp_path):
        path = thresholds_cache_path(TINY, tmp_path)
        marker = SafetyThresholds(
            motor_velocity=np.full(3, 123.0),
            motor_acceleration=np.full(3, 1.0),
            joint_velocity=np.full(3, 1.0),
        )
        write_thresholds_cache(path, marker, TINY)
        payload = json.loads(path.read_text())
        payload["schema"] = -1
        path.write_text(json.dumps(payload))
        loaded = get_thresholds(TINY, cache_dir=tmp_path)
        assert loaded.motor_velocity[0] != 123.0

    def test_config_change_invalidated(self, tmp_path):
        """Thresholds cached under different training settings retrain."""
        import dataclasses

        path = thresholds_cache_path(TINY, tmp_path)
        marker = SafetyThresholds(
            motor_velocity=np.full(3, 123.0),
            motor_acceleration=np.full(3, 1.0),
            joint_velocity=np.full(3, 1.0),
        )
        other = dataclasses.replace(TINY, training_duration_s=0.9)
        write_thresholds_cache(path, marker, other)
        loaded = get_thresholds(TINY, cache_dir=tmp_path)
        assert loaded.motor_velocity[0] != 123.0


class TestCampaignSerialization:
    def test_outcome_roundtrip(self):
        outcome = RunOutcome(
            cell=CampaignCell("B", 18000, 64),
            seed=3,
            label=True,
            raven_detected=False,
            model_detected=True,
            deviation_mm=2.5,
            attack_fired=True,
        )
        restored = _outcome_from_dict(
            json.loads(json.dumps(_outcome_to_dict(outcome)))
        )
        assert restored == outcome

    def test_fault_free_outcome_roundtrip(self):
        outcome = RunOutcome(
            cell=None,
            seed=9,
            label=False,
            raven_detected=False,
            model_detected=False,
            deviation_mm=0.0,
            attack_fired=False,
        )
        restored = _outcome_from_dict(_outcome_to_dict(outcome))
        assert restored.is_fault_free
        assert restored == outcome

    def test_cache_path_per_scenario_and_scale(self, tmp_path):
        a = campaign_cache_path("A", TINY, tmp_path)
        b = campaign_cache_path("B", TINY, tmp_path)
        assert a != b
        assert "tiny-test" in str(a)

    def test_confusion_survives_roundtrip(self):
        result = CampaignResult(scenario="B")
        result.outcomes = [
            RunOutcome(CampaignCell("B", 1, 2), 0, True, False, True, 1.0, True),
            RunOutcome(None, 1, False, False, False, 0.0, False),
        ]
        restored = CampaignResult(scenario="B")
        restored.outcomes = [
            _outcome_from_dict(_outcome_to_dict(o)) for o in result.outcomes
        ]
        assert (
            restored.confusion("model").tp == result.confusion("model").tp == 1
        )

"""Tests for repro.kinematics.wrist."""

import math

import numpy as np

from repro.kinematics.wrist import (
    WristKinematics,
    euler_zyx_to_quat,
    wrist_pose_tuple,
)


class TestTargetsFromQuaternion:
    def test_identity_orientation_zero_targets(self):
        wrist = WristKinematics()
        targets = wrist.targets_from_quaternion(np.array([1.0, 0, 0, 0]))
        assert np.allclose(targets, 0.0, atol=1e-12)

    def test_roll_pitch_yaw_recovered(self):
        wrist = WristKinematics()
        q = euler_zyx_to_quat(0.4, -0.2, 0.3)
        roll, pitch, jaw1, jaw2 = wrist.targets_from_quaternion(q)
        assert math.isclose(roll, 0.4, abs_tol=1e-9)
        assert math.isclose(pitch, -0.2, abs_tol=1e-9)
        assert math.isclose(0.5 * (jaw1 + jaw2), 0.3, abs_tol=1e-9)

    def test_grasp_angle_splits_jaws(self):
        wrist = WristKinematics(grasp_half_angle=0.25)
        q = euler_zyx_to_quat(0.0, 0.0, 0.1)
        _roll, _pitch, jaw1, jaw2 = wrist.targets_from_quaternion(q)
        assert math.isclose(jaw1 - jaw2, 0.5, abs_tol=1e-9)


class TestWristTracking:
    def test_step_converges_to_targets(self):
        wrist = WristKinematics(time_constant=0.01)
        targets = np.array([0.3, -0.1, 0.2, 0.1])
        for _ in range(1000):
            wrist.step(targets, dt=1e-3)
        assert wrist.orientation_error(targets) < 1e-6

    def test_step_moves_toward_targets(self):
        wrist = WristKinematics()
        targets = np.array([1.0, 0.0, 0.0, 0.0])
        before = wrist.orientation_error(targets)
        wrist.step(targets, dt=1e-3)
        assert wrist.orientation_error(targets) < before

    def test_pose_tuple_averages_jaws(self):
        roll, pitch, yaw = wrist_pose_tuple(np.array([0.1, 0.2, 0.5, 0.3]))
        assert roll == 0.1 and pitch == 0.2
        assert math.isclose(yaw, 0.4)

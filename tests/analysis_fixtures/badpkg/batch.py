"""Batch-layer fixtures: ``*.batch`` modules carry the same RPR002
determinism and RPR004 pool-safety obligations as the scalar path."""

import numpy as np

from repro.experiments.parallel import run_tasks


def batched_noise(n):
    return np.random.rand(n, 3)  # legacy global RNG inside a batch kernel


def fan_out_lanes(lanes):
    def step(lane):  # nested worker: unpicklable across the pool
        return lane

    return run_tasks(step, lanes)

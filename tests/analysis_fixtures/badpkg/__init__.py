"""Deliberately violating fixture modules (one per rule family)."""

"""Snapshot/restore/reset families that leak mutable state (RPR006)."""


class LeakySession:
    """``dropped`` escapes both families; ``cursor`` escapes reset."""

    def __init__(self, depth):
        self.depth = depth
        self.frames = 0
        self.dropped = 0
        self.cursor = 0
        self._obs_hook = None

    def snapshot(self):
        return {"frames": self.frames, "cursor": self.cursor}

    def restore(self, payload):
        self.frames = payload["frames"]
        self.cursor = payload["cursor"]

    def reset(self):
        self.frames = 0

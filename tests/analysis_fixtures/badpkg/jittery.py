"""RPR002 fixtures: hidden ambient inputs in a golden-trace package."""

import datetime
import os
import random
import time

import numpy as np

from repro.experiments.parallel import iter_tasks


def stamp():
    return time.time()  # wall clock


def stamp_day():
    return datetime.datetime.now()  # wall clock


def noise():
    return np.random.rand(3)  # legacy global-state RNG


def coin():
    return random.random()  # global-state RNG


def knob():
    return os.environ.get("REPRO_FIXTURE_KNOB", "")  # raw environ read


def fan_out(tasks):
    return list(iter_tasks(lambda task: task, tasks))  # pool lambda


def tick():
    return time.perf_counter()  # bare monotonic probe outside repro.obs.timing

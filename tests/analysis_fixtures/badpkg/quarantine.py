"""Lane faults swallowed without re-raise or quarantine (RPR008)."""


class StoreError(Exception):
    """Checkpoint store failure."""


class FrameIntegrityError(StoreError):
    """A frame failed its digest check."""


class LaneRunner:
    def __init__(self, lanes):
        self.lanes = lanes
        self.faults = []

    def step_all(self):
        for lane in self.lanes:
            try:
                lane.step()
            except Exception:
                pass

    def verify(self, lane):
        try:
            return lane.digest()
        except StoreError:
            return None

    def isolated(self, lane):
        try:
            lane.step()
        except Exception as exc:
            self.faults.append((lane, exc))

    def reread(self, lane):
        try:
            return lane.digest()
        except FrameIntegrityError:
            raise

"""Fleet-layer fixtures: a ``repro.fleet``-style module carries the
RPR002 determinism contract (checkpoints and decision chains are pinned
byte-for-byte) and the RPR004 pool-safety contract."""

import os
import time

from repro.experiments.parallel import run_tasks


def checkpoint_meta(session_id):
    return {"session": session_id, "at": time.time()}  # wall clock in a checkpoint


def resolve_queue_depth():
    return int(os.environ.get("REPRO_FLEET_QUEUE_DEPTH", "64"))  # raw env read


def drain_sessions(sessions):
    def drain(session):  # nested worker: unpicklable across the pool
        return session

    return run_tasks(drain, sessions)

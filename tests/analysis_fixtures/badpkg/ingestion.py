"""Ingest-to-DAC call paths that dodge the detector gate (RPR005).

``FeedRouter.ingest`` reaches ``Driver.emit``'s DAC sink through
``Relay.forward`` without ever passing a gate, and ``GateKeeper.sloppy``
latches *before* its guard call — the two shapes RPR005 reports.
``GateKeeper.vet`` is the clean gate the fixture config points at.
"""


class Driver:
    def __init__(self, board):
        self.board = board

    def emit(self, values):
        self.board._latch(values)


class Relay:
    def __init__(self, driver: "Driver"):
        self.driver = driver

    def forward(self, values):
        self.driver.emit(values)


class GateKeeper:
    def __init__(self, guard, driver: "Driver"):
        self.guard = guard
        self.driver = driver

    def vet(self, values):
        if self.guard(values):
            self.driver.emit(values)

    def sloppy(self, values):
        self.driver.board._latch(values)
        self.guard(values)


class FeedRouter:
    def __init__(self, relay: "Relay", keeper: "GateKeeper"):
        self.relay = relay
        self.keeper = keeper

    def ingest(self, values):
        self.relay.forward(values)

    def gated_ingest(self, values):
        self.keeper.vet(values)

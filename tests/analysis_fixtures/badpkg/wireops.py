"""Service-boundary faults swallowed without journal or re-raise (RPR008)."""


class WireError(Exception):
    """Protocol breach on a connection."""


class FrameCorruptionError(WireError):
    """A framed message failed its integrity check."""


class ConnectionLoop:
    def __init__(self, connections):
        self.connections = connections
        self.faults = []

    def pump_all(self):
        for conn in self.connections:
            try:
                conn.pump()
            except Exception:
                pass

    def decode(self, conn):
        try:
            return conn.read_frame()
        except WireError:
            return None

    def dispatch(self, conn):
        try:
            return conn.handle()
        except Exception as exc:
            self.faults.append((conn, exc))

    def reframe(self, conn):
        try:
            return conn.read_frame()
        except FrameCorruptionError:
            raise

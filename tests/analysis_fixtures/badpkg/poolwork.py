"""RPR004 fixtures: unpicklable workers handed to the pool layer."""

from functools import partial

from repro.experiments.parallel import run_tasks


def fan_out_nested(tasks):
    def local_worker(task):
        return task

    return run_tasks(local_worker, tasks)  # nested def crosses the pool


def fan_out_bound_lambda(tasks):
    handler = lambda task: task  # noqa: E731
    return run_tasks(handler, tasks)  # locally bound lambda


def fan_out_inline(tasks):
    return run_tasks(lambda task: task, tasks)  # inline lambda


def fan_out_partial(tasks):
    def scale(task, k):
        return task * k

    return run_tasks(partial(scale, 2), tasks)  # partial over nested def

"""RPR001 fixtures: guard bypass, rogue hook installs, TOCTOU windows.

Every class below violates the sink-confinement discipline that
``repro.core.pipeline`` enforces in the real tree.
"""


class RogueActuator:
    """Reaches the DAC sink without going through the guarded path."""

    def __init__(self, board, handler):
        self.board = board
        self.board.guard = handler  # hook install on a foreign object

    def blast(self, values):
        self.board._latch(values)  # direct sink call, guard never runs


class ToctouActuator:
    """Mutates the command *after* the guard admitted it."""

    def __init__(self, board, guard):
        self.board = board
        self.guard = guard  # definition site on self: allowed

    def send(self, packet):
        self.guard(packet)
        packet.dac_values[0] = 32767  # post-check mutation
        self.board.fd_write(packet)

    def relabel(self, board, data):
        self.guard(data)
        data = list(data)  # post-check rebind
        board.fd_write(data)


def hijack(board, handler):
    setattr(board, "guard", handler)  # setattr spelling of the install

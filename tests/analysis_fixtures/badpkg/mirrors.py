"""Scalar/batched API drift (RPR007)."""


class Sampler:
    WINDOW = 8
    GAIN = 1.5

    def __init__(self):
        self.total = 0

    def sample(self, value):
        self.total += value

    def drain(self):
        out, self.total = self.total, 0
        return out

    def snapshot(self):
        return {"total": self.total}


class BatchedSampler:
    """Mirrors ``sample``, aliases ``snapshot`` as ``lane_state`` — but
    misses ``drain`` and drifts ``WINDOW``."""

    WINDOW = 16
    GAIN = 1.5

    def __init__(self, lanes):
        self.totals = [0] * lanes

    def sample(self, lane, value):
        self.totals[lane] += value

    def lane_state(self, lane):
        return {"total": self.totals[lane]}

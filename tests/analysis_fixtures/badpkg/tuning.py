"""RPR003 fixtures: magic numbers vs properly named thresholds."""

from dataclasses import dataclass, field

SAFE_LIMIT = 123.5  # module-level constant: allowed


@dataclass
class Tuning:
    gain: float = 17.25  # dataclass default: allowed
    taps: int = 12  # dataclass default: allowed
    knots = field(default_factory=lambda: [0.125, 8.5])  # allowed


def threshold(x):
    if x > 42.5:  # magic threshold inside logic: flagged
        return x * 9000  # magic scale factor: flagged
    return x


def pick(values):
    return values[3]  # subscript index: structural, allowed

"""Violations waived line-by-line — exercises the suppression parser."""

import time

from repro.experiments.parallel import run_tasks


def stamped():
    return time.time()  # repro: allow[RPR002]


def fan_out(tasks):
    return run_tasks(lambda t: t, tasks)  # repro: allow[RPR002, RPR004]


def blast(board, values):
    board._latch(values)  # repro: allow[*]

"""Disciplined fixture modules: the clean version of each pattern."""

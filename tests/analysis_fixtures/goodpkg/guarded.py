"""A fully gated write path with complete lifecycle coverage (clean)."""


class GatedBoard:
    """The guard verdict dominates the DAC sink (usb_board's shape)."""

    def __init__(self, guard):
        self.guard = guard
        self.writes = 0

    def fd_write(self, values):
        verdict = self.guard(values)
        if verdict:
            self._latch(values)
        return verdict

    def _latch(self, values):
        self.writes += 1


class CleanSession:
    """Every mutable ``__init__`` attribute is covered by all families."""

    def __init__(self, session_id):
        self.session_id = session_id
        self.frames = 0
        self.alerts = 0

    def snapshot(self):
        return {"frames": self.frames, "alerts": self.alerts}

    def restore(self, payload):
        self.frames = payload["frames"]
        self.alerts = payload["alerts"]

    def reset(self):
        self.frames = 0
        self.alerts = 0

"""Clean counterexamples: every fixture pattern done the sanctioned way."""

import numpy as np

from repro.envcfg import env_str
from repro.experiments.parallel import run_tasks

FIXTURE_GAIN = 2.5  # named at module level


def module_worker(task):
    return task


def fan_out(tasks):
    return run_tasks(module_worker, tasks)  # module-level worker pickles


def noise(seed):
    return np.random.default_rng(seed).standard_normal(3)  # seeded RNG


def knob():
    return env_str("REPRO_FIXTURE_KNOB")  # environment via the shim


def send(board, packet):
    board.fd_write(packet)  # guarded write path, no direct sink call

"""Known-bad and known-good fixture packages for the repro.analysis tests.

These modules are lint *subjects*, never imported at runtime: the engine
parses them from disk.  ``badpkg`` holds one deliberately violating
module per rule family; ``goodpkg`` holds the disciplined counterparts
plus a module exercising inline suppressions.  Keep the syntax Python
3.9-compatible — the engine must report identical findings on every CI
interpreter.
"""

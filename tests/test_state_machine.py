"""Tests for repro.control.state_machine."""

import pytest

from repro import constants
from repro.control.state_machine import OperationalStateMachine, RobotState
from repro.errors import StateMachineError


class TestRobotState:
    def test_byte_values_match_constants(self):
        assert RobotState.E_STOP.byte_value == constants.STATE_BYTE_ESTOP
        assert RobotState.PEDAL_DOWN.byte_value == constants.STATE_BYTE_PEDAL_DOWN

    def test_from_byte_ignores_watchdog_bit(self):
        wd = 1 << constants.USB_WATCHDOG_BIT
        assert RobotState.from_byte(0x0F) is RobotState.PEDAL_DOWN
        assert RobotState.from_byte(0x0F | wd) is RobotState.PEDAL_DOWN

    def test_from_byte_invalid(self):
        with pytest.raises(StateMachineError):
            RobotState.from_byte(0x05)

    def test_all_states_roundtrip(self):
        for state in RobotState:
            assert RobotState.from_byte(state.byte_value) is state


class TestTransitions:
    def test_nominal_session(self):
        sm = OperationalStateMachine()
        sm.press_start(1.0)
        assert sm.state is RobotState.INIT
        sm.initialization_done(2.0)
        assert sm.state is RobotState.PEDAL_UP
        sm.set_pedal(True, 3.0)
        assert sm.state is RobotState.PEDAL_DOWN
        assert sm.engaged
        sm.set_pedal(False, 4.0)
        assert sm.state is RobotState.PEDAL_UP

    def test_start_only_from_estop(self):
        sm = OperationalStateMachine()
        sm.press_start()
        with pytest.raises(StateMachineError):
            sm.press_start()

    def test_init_done_only_from_init(self):
        sm = OperationalStateMachine()
        with pytest.raises(StateMachineError):
            sm.initialization_done()

    def test_pedal_ignored_when_not_ready(self):
        sm = OperationalStateMachine()
        sm.set_pedal(True)
        assert sm.state is RobotState.E_STOP
        sm.press_start()
        sm.set_pedal(True)
        assert sm.state is RobotState.INIT

    def test_emergency_stop_from_any_state(self):
        sm = OperationalStateMachine()
        sm.press_start()
        sm.initialization_done()
        sm.set_pedal(True)
        sm.emergency_stop(reason="test")
        assert sm.state is RobotState.E_STOP
        assert sm.last_estop_reason == "test"

    def test_can_transition(self):
        sm = OperationalStateMachine()
        assert sm.can_transition(RobotState.INIT)
        assert not sm.can_transition(RobotState.PEDAL_DOWN)
        assert sm.can_transition(RobotState.E_STOP)

    def test_history_records_transitions(self):
        sm = OperationalStateMachine()
        sm.press_start(0.5)
        sm.initialization_done(1.5)
        states = [s for _t, s in sm.history]
        assert states == [RobotState.E_STOP, RobotState.INIT, RobotState.PEDAL_UP]

    def test_listener_called_with_old_and_new(self):
        sm = OperationalStateMachine()
        seen = []
        sm.add_listener(lambda old, new: seen.append((old, new)))
        sm.press_start()
        assert seen == [(RobotState.E_STOP, RobotState.INIT)]

    def test_same_state_no_event(self):
        sm = OperationalStateMachine()
        seen = []
        sm.add_listener(lambda old, new: seen.append((old, new)))
        sm.emergency_stop()  # already in E-STOP
        assert seen == []

"""Tests for repro.sysmodel: processes, syscalls, dynamic linking."""

import pytest

from repro.errors import LinkerError, SyscallError
from repro.sysmodel.linker import DynamicLinker, SharedLibrary, SystemEnvironment
from repro.sysmodel.process import Process


class Sink:
    """Minimal DeviceFile for tests."""

    def __init__(self):
        self.written = []

    def fd_write(self, data: bytes) -> int:
        self.written.append(bytes(data))
        return len(data)

    def fd_read(self, max_bytes: int) -> bytes:
        return b"R" * min(max_bytes, 4)


class Socket(Sink):
    def __init__(self, payloads=()):
        super().__init__()
        self.payloads = list(payloads)

    def fd_recvfrom(self, max_bytes: int):
        return self.payloads.pop(0) if self.payloads else None


class TestProcess:
    def test_write_read_through_fd(self):
        p = Process("test")
        sink = Sink()
        fd = p.open_device(sink)
        assert p.write(fd, b"abc") == 3
        assert sink.written == [b"abc"]
        assert p.read(fd, 2) == b"RR"

    def test_bad_fd_raises(self):
        p = Process("test")
        with pytest.raises(SyscallError):
            p.write(99, b"x")

    def test_close_removes_fd(self):
        p = Process("test")
        fd = p.open_device(Sink())
        p.close(fd)
        with pytest.raises(SyscallError):
            p.read(fd, 1)

    def test_close_unknown_fd_raises(self):
        with pytest.raises(SyscallError):
            Process("test").close(3)

    def test_fds_start_at_3(self):
        p = Process("test")
        assert p.open_device(Sink()) == 3
        assert p.open_device(Sink()) == 4

    def test_unique_pids(self):
        assert Process("a").pid != Process("b").pid

    def test_write_requires_bytes(self):
        p = Process("test")
        fd = p.open_device(Sink())
        with pytest.raises(SyscallError):
            p.write(fd, "not-bytes")

    def test_recvfrom_on_socket(self):
        p = Process("test")
        fd = p.open_device(Socket([b"datagram"]))
        assert p.recvfrom(fd, 100) == b"datagram"
        assert p.recvfrom(fd, 100) is None

    def test_recvfrom_on_non_socket_raises(self):
        p = Process("test")
        fd = p.open_device(Sink())
        with pytest.raises(SyscallError):
            p.recvfrom(fd, 10)


def make_tagging_library(name, tag):
    """A library whose write wrapper prepends ``tag`` to the data."""
    lib = SharedLibrary(name)

    def factory(next_write, _process):
        def wrapper(fd, data):
            return next_write(fd, tag + data)

        return wrapper

    lib.export("write", factory)
    return lib


class TestSharedLibrary:
    def test_unknown_symbol_rejected(self):
        lib = SharedLibrary("lib.so")
        with pytest.raises(LinkerError):
            lib.export("open", lambda n, p: n)

    def test_exports_copy(self):
        lib = make_tagging_library("lib.so", b"x")
        exports = lib.exports()
        exports.clear()
        assert lib.exports()  # original untouched

    def test_repr_lists_exports(self):
        lib = make_tagging_library("lib.so", b"x")
        assert "write" in repr(lib)


class TestDynamicLinker:
    def test_preload_wraps_write(self):
        env = SystemEnvironment()
        env.set_user_preload("surgeon", make_tagging_library("a.so", b"A"))
        p = DynamicLinker(env).spawn("victim", user="surgeon")
        sink = Sink()
        fd = p.open_device(sink)
        p.write(fd, b"data")
        assert sink.written == [b"Adata"]

    def test_preload_order_first_library_runs_first(self):
        env = SystemEnvironment()
        env.set_user_preload("surgeon", make_tagging_library("a.so", b"A"))
        env.set_user_preload("surgeon", make_tagging_library("b.so", b"B"))
        p = DynamicLinker(env).spawn("victim", user="surgeon")
        sink = Sink()
        fd = p.open_device(sink)
        p.write(fd, b"!")
        # A is first in LD_PRELOAD: its wrapper runs first, so B (next in
        # chain) sees A's output: final = B? No: A wraps B wraps real.
        assert sink.written == [b"BA!"]

    def test_system_preload_precedes_user(self):
        env = SystemEnvironment()
        env.set_user_preload("surgeon", make_tagging_library("u.so", b"U"))
        env.add_system_preload(make_tagging_library("s.so", b"S"))
        p = DynamicLinker(env).spawn("victim", user="surgeon")
        sink = Sink()
        fd = p.open_device(sink)
        p.write(fd, b"!")
        # System library runs first -> its tag is applied first, so the
        # user library (deeper in the chain) prepends afterwards.
        assert sink.written == [b"US!"]

    def test_other_users_unaffected_by_user_preload(self):
        env = SystemEnvironment()
        env.set_user_preload("surgeon", make_tagging_library("a.so", b"A"))
        p = DynamicLinker(env).spawn("victim", user="admin")
        sink = Sink()
        fd = p.open_device(sink)
        p.write(fd, b"data")
        assert sink.written == [b"data"]

    def test_system_preload_affects_all_users(self):
        env = SystemEnvironment()
        env.add_system_preload(make_tagging_library("s.so", b"S"))
        p = DynamicLinker(env).spawn("victim", user="anyone")
        sink = Sink()
        fd = p.open_device(sink)
        p.write(fd, b"!")
        assert sink.written == [b"S!"]

    def test_existing_process_unaffected_until_relink(self):
        env = SystemEnvironment()
        linker = DynamicLinker(env)
        p = linker.spawn("victim", user="surgeon")
        sink = Sink()
        fd = p.open_device(sink)
        # Malware lands *after* the process started.
        env.set_user_preload("surgeon", make_tagging_library("a.so", b"A"))
        p.write(fd, b"1")
        assert sink.written == [b"1"]  # still clean
        p.relink(linker)  # "new terminal" / process restart
        p.write(fd, b"2")
        assert sink.written == [b"1", b"A2"]

    def test_clear_user_preload(self):
        env = SystemEnvironment()
        env.set_user_preload("surgeon", make_tagging_library("a.so", b"A"))
        env.clear_user_preload("surgeon")
        assert env.preload_list("surgeon") == []

    def test_clear_system_preload(self):
        env = SystemEnvironment()
        env.add_system_preload(make_tagging_library("s.so", b"S"))
        env.clear_system_preload()
        assert env.preload_list(None) == []

    def test_wrapper_can_suppress_call(self):
        lib = SharedLibrary("drop.so")

        def factory(next_write, _process):
            def wrapper(fd, data):
                return len(data)  # never calls the original

            return wrapper

        lib.export("write", factory)
        env = SystemEnvironment()
        env.set_user_preload("surgeon", lib)
        p = DynamicLinker(env).spawn("victim", user="surgeon")
        sink = Sink()
        fd = p.open_device(sink)
        assert p.write(fd, b"gone") == 4
        assert sink.written == []

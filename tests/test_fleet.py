"""Fleet supervisor: durable sessions, quarantine, backpressure, chaos.

The fail-operational contract under test:

- session state round-trips through both :class:`SessionStore` backends
  and survives corruption (fallback to the previous version);
- a killed session resumes *bit-identically* — its decision hash chain
  converges to the digest of an uninterrupted run;
- quarantining a faulty lane leaves every healthy lane's fingerprint
  byte-identical to a no-fault run (the differential proof that lane
  removal is non-disruptive);
- bounded queues reject frames instead of silently shedding, and silent
  sessions walk the coast -> STALE -> PLC E-STOP machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.thresholds import SafetyThresholds
from repro.errors import FleetError, SessionStoreError, SnapshotIntegrityError
from repro.experiments.fleet import (
    frame_for,
    frames_from_trace,
    run_fleet_campaign,
    session_id,
)
from repro.fleet import (
    FleetConfig,
    FleetSession,
    FleetSupervisor,
    InMemorySessionStore,
    RetryingSessionStore,
    SessionSnapshot,
    SessionSpec,
    SqliteSessionStore,
    TelemetryFrame,
)
from repro.obs.runtime import ENV_DIR, ENV_ENABLE, reset_runtime
from repro.testing import ChaosInjector, FaultPlan, FaultSpec

pytestmark = [pytest.mark.fleet, pytest.mark.robustness]

THRESHOLDS = SafetyThresholds(
    motor_velocity=np.array([50.0, 50.0, 50.0]),
    motor_acceleration=np.array([50000.0, 50000.0, 50000.0]),
    joint_velocity=np.array([5.0, 5.0, 5.0]),
)


def spec(sid: str, **kwargs) -> SessionSpec:
    return SessionSpec(session_id=sid, thresholds=THRESHOLDS, **kwargs)


def nominal_frame(tick: int) -> TelemetryFrame:
    return TelemetryFrame(tick=tick, dac=(100, 100, 100), mpos=(0.0, 0.0, 0.0))


def payload(sid: str = "s", tick: int = 0) -> dict:
    return {"session_id": sid, "tick": tick, "data": [1.5, -2.25]}


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemorySessionStore()
    return SqliteSessionStore(tmp_path / "fleet.sqlite")


class TestSessionStore:
    def test_round_trip_preserves_payload_exactly(self, store):
        snap = SessionSnapshot.create("s", 1, payload())
        store.save(snap)
        loaded = store.load("s")
        assert loaded.payload == snap.payload
        assert loaded.version == 1
        assert loaded.checksum == snap.checksum

    def test_load_returns_newest_version(self, store):
        store.save(SessionSnapshot.create("s", 1, payload(tick=1)))
        store.save(SessionSnapshot.create("s", 2, payload(tick=2)))
        assert store.load("s").payload["tick"] == 2

    def test_duplicate_version_rejected(self, store):
        store.save(SessionSnapshot.create("s", 1, payload()))
        with pytest.raises(SessionStoreError, match="already has"):
            store.save(SessionSnapshot.create("s", 1, payload()))

    def test_unknown_session_loads_none(self, store):
        assert store.load("ghost") is None

    def test_corruption_falls_back_to_previous_version(self, store):
        store.save(SessionSnapshot.create("s", 1, payload(tick=1)))
        store.save(SessionSnapshot.create("s", 2, payload(tick=2)))
        assert store.corrupt_latest("s")
        loaded = store.load("s")
        assert loaded.version == 1
        assert loaded.payload["tick"] == 1

    def test_all_versions_corrupt_is_an_integrity_error(self, store):
        store.save(SessionSnapshot.create("s", 1, payload()))
        assert store.corrupt_latest("s")
        with pytest.raises(SnapshotIntegrityError, match="all 1 stored"):
            store.load("s")

    def test_sessions_and_delete(self, store):
        store.save(SessionSnapshot.create("a", 1, payload("a")))
        store.save(SessionSnapshot.create("b", 1, payload("b")))
        assert store.session_ids() == ["a", "b"]
        store.delete("a")
        assert store.session_ids() == ["b"]
        assert store.versions("a") == []


class _FlakyStore(InMemorySessionStore):
    """Fails the first ``failures`` save calls with a transient error."""

    def __init__(self, failures: int) -> None:
        super().__init__()
        self.failures = failures
        self.attempts = 0

    def save(self, snapshot: SessionSnapshot) -> None:
        self.attempts += 1
        if self.attempts <= self.failures:
            raise OSError("disk hiccup")
        super().save(snapshot)


class TestRetryingStore:
    def test_transient_failures_are_retried(self):
        flaky = _FlakyStore(failures=2)
        retrying = RetryingSessionStore(flaky, retries=2, backoff_s=0.0)
        retrying.save(SessionSnapshot.create("s", 1, payload()))
        assert flaky.attempts == 3
        assert retrying.load("s").version == 1

    def test_exhausted_retries_surface_as_store_error(self):
        flaky = _FlakyStore(failures=5)
        retrying = RetryingSessionStore(flaky, retries=2, backoff_s=0.0)
        with pytest.raises(SessionStoreError, match="after 3 attempt"):
            retrying.save(SessionSnapshot.create("s", 1, payload()))

    def test_integrity_errors_are_not_retried(self):
        backend = InMemorySessionStore()
        backend.save(SessionSnapshot.create("s", 1, payload()))
        backend.corrupt_latest("s")
        retrying = RetryingSessionStore(backend, retries=5, backoff_s=0.0)
        with pytest.raises(SnapshotIntegrityError):
            retrying.load("s")


class TestBackpressure:
    def test_full_queue_rejects_frames(self):
        fleet = FleetSupervisor(config=FleetConfig(queue_depth=2))
        fleet.register(spec("s"))
        assert fleet.ingest("s", nominal_frame(0))
        assert fleet.ingest("s", nominal_frame(1))
        assert not fleet.ingest("s", nominal_frame(2))
        assert fleet.sessions["s"].frames_rejected == 1
        # Draining makes room again.
        fleet.tick(0)
        assert fleet.ingest("s", nominal_frame(3))

    def test_quarantined_session_rejects_frames(self):
        fleet = FleetSupervisor(config=FleetConfig())
        fleet.register(spec("a"))
        fleet.register(spec("b"))
        fleet.quarantine("a", "test")
        assert not fleet.ingest("a", nominal_frame(0))
        assert fleet.ingest("b", nominal_frame(0))

    def test_unknown_session_raises(self):
        fleet = FleetSupervisor(config=FleetConfig())
        with pytest.raises(FleetError, match="unknown session"):
            fleet.ingest("ghost", nominal_frame(0))

    def test_registration_cap(self):
        fleet = FleetSupervisor(config=FleetConfig(max_sessions=1))
        fleet.register(spec("a"))
        with pytest.raises(FleetError, match="fleet is full"):
            fleet.register(spec("b"))


class TestStalenessWatchdog:
    def test_silent_session_walks_to_estop(self):
        cfg = FleetConfig(stale_after_ticks=5)
        fleet = FleetSupervisor(config=cfg)
        fleet.register(spec("s"))
        fleet.ingest("s", nominal_frame(0))
        fleet.tick(0)
        assert fleet.sessions["s"].health == "nominal"
        # Telemetry goes silent; the watchdog escalates past the timeout.
        for tick in range(1, 8):
            fleet.tick(tick)
        session = fleet.sessions["s"]
        assert session.health == "estopped"
        assert session.board.plc.estop_latched
        assert "stale" in session.board.plc.estop_reason

    def test_slow_consumer_defers_but_preserves_decisions(self):
        base = run_fleet_campaign(num_sessions=2, ticks=40, seed=7)
        plan = FaultPlan(
            specs=[FaultSpec(kind="slow_consumer", match="rig-001", index=10, hang_s=8)]
        )
        slow = run_fleet_campaign(
            num_sessions=2, ticks=40, seed=7, injector=ChaosInjector(plan)
        )
        # The stalled session drains late but in order: identical chain.
        assert slow.fingerprints == base.fingerprints


class TestQuarantineDifferential:
    def test_healthy_lanes_unaffected_by_quarantine(self):
        cfg = FleetConfig(checkpoint_every=8)
        base = run_fleet_campaign(num_sessions=3, ticks=30, seed=5, config=cfg)

        fleet = FleetSupervisor(config=cfg)
        for i in range(3):
            fleet.register(spec(session_id(i)))
        for tick in range(30):
            for i in range(3):
                sid = session_id(i)
                if not fleet.sessions[sid].quarantined:
                    fleet.ingest(sid, frame_for(5, i, tick))
            if tick == 12:
                fleet.quarantine(session_id(1), "operator pulled the plug")
            fleet.tick(tick)

        fps = fleet.fingerprints()
        # Differential proof: survivors' bytes as if the lane never left.
        assert fps[session_id(0)] == base.fingerprints[session_id(0)]
        assert fps[session_id(2)] == base.fingerprints[session_id(2)]
        quarantined = fleet.sessions[session_id(1)]
        assert quarantined.quarantined
        assert quarantined.health == "estopped"
        assert quarantined.board.plc.estop_latched

    def test_throwing_lane_is_quarantined_not_fatal(self):
        cfg = FleetConfig(checkpoint_every=8)
        base = run_fleet_campaign(num_sessions=3, ticks=30, seed=5, config=cfg)

        fleet = FleetSupervisor(config=cfg)
        for i in range(3):
            fleet.register(spec(session_id(i)))

        class _Bomb(Exception):
            pass

        def explode(estimate):
            raise _Bomb("detector hardware fault")

        reports = []
        for tick in range(30):
            for i in range(3):
                sid = session_id(i)
                if not fleet.sessions[sid].quarantined:
                    fleet.ingest(sid, frame_for(5, i, tick))
            if tick == 15:
                fleet.sessions[session_id(1)].supervisor.guard.detector.evaluate = (
                    explode
                )
            reports.append(fleet.tick(tick))

        bad = fleet.sessions[session_id(1)]
        assert bad.quarantined
        assert "_Bomb" in bad.quarantine_reason
        assert bad.health == "estopped"
        assert any(q for r in reports for q in r.quarantined)
        fps = fleet.fingerprints()
        assert fps[session_id(0)] == base.fingerprints[session_id(0)]
        assert fps[session_id(2)] == base.fingerprints[session_id(2)]

    def test_quarantine_writes_flight_dump(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_ENABLE, "1")
        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        reset_runtime()
        try:
            fleet = FleetSupervisor(config=FleetConfig())
            fleet.register(spec("dump-me"))
            fleet.ingest("dump-me", nominal_frame(0))
            fleet.tick(0)
            fleet.quarantine("dump-me", "forced for the dump test")
            dumps = list((tmp_path / "flight").glob("flight-fleet-dump-me-*.jsonl"))
            assert len(dumps) == 1
            text = dumps[0].read_text()
            assert "forced for the dump test" in text
        finally:
            reset_runtime()


class TestCheckpointResume:
    def test_kill_and_resume_converges_to_baseline(self, store):
        cfg = FleetConfig(checkpoint_every=6)
        base = run_fleet_campaign(num_sessions=3, ticks=40, seed=2, config=cfg)
        plan = FaultPlan(
            specs=[FaultSpec(kind="session_kill", match="rig-001", index=17)]
        )
        chaos = run_fleet_campaign(
            num_sessions=3,
            ticks=40,
            seed=2,
            config=cfg,
            store=store,
            injector=ChaosInjector(plan),
        )
        assert chaos.kills and chaos.kills[0][0] == "rig-001"
        assert chaos.fingerprints == base.fingerprints

    def test_corrupt_checkpoint_resumes_from_older_version(self, store):
        cfg = FleetConfig(checkpoint_every=6)
        base = run_fleet_campaign(num_sessions=2, ticks=40, seed=2, config=cfg)
        plan = FaultPlan(
            specs=[
                FaultSpec(kind="store_corrupt", match="rig-000", index=15),
                FaultSpec(kind="session_kill", match="rig-000", index=20),
            ]
        )
        chaos = run_fleet_campaign(
            num_sessions=2,
            ticks=40,
            seed=2,
            config=cfg,
            store=store,
            injector=ChaosInjector(plan),
        )
        # Resumed from the pre-corruption version, replayed further back,
        # still converges to the uninterrupted bytes.
        assert chaos.kills
        assert chaos.fingerprints == base.fingerprints

    def test_kill_without_any_checkpoint_quarantines(self):
        # checkpoint_every larger than the kill tick: nothing stored yet.
        cfg = FleetConfig(checkpoint_every=500)
        fleet = FleetSupervisor(config=cfg)
        fleet.register(spec("s"))

        # Defeat the tick-0 checkpoint by corrupting the store's only
        # snapshot, then kill: resume must fail onto the tombstone path.
        fleet.ingest("s", nominal_frame(0))
        fleet.tick(0)
        fleet.store.delete("s")
        plan = FaultPlan(specs=[FaultSpec(kind="session_kill", match="s")])
        fleet.injector = ChaosInjector(plan)
        report = fleet.tick(1)
        assert report.quarantined
        session = fleet.sessions["s"]
        assert session.quarantined
        assert "not resumable" in session.quarantine_reason
        assert session.health == "estopped"

    def test_resume_without_checkpoint_raises(self):
        fleet = FleetSupervisor(config=FleetConfig())
        with pytest.raises(FleetError, match="no stored checkpoint"):
            fleet.resume(spec("ghost"))

    def test_explicit_checkpoint_round_trip(self, store):
        cfg = FleetConfig(checkpoint_every=1000)
        fleet = FleetSupervisor(store=store, config=cfg)
        fleet.register(spec("s"))
        for tick in range(10):
            fleet.ingest("s", frame_for(0, 0, tick))
            fleet.tick(tick)
        snap = fleet.checkpoint("s", 9)
        digest = fleet.sessions["s"].digest

        other = FleetSupervisor(store=store, config=cfg)
        resumed = other.resume(spec("s"))
        assert resumed.digest == digest
        assert resumed.frames_processed == 10
        assert resumed.checkpoint_version == snap.version
        assert resumed.last_checkpoint_tick == 9

    def test_resume_preserves_ingest_counter(self, store):
        cfg = FleetConfig(checkpoint_every=1000)
        fleet = FleetSupervisor(store=store, config=cfg)
        fleet.register(spec("s"))
        for tick in range(5):
            fleet.ingest("s", frame_for(0, 0, tick))
            fleet.tick(tick)
        assert fleet.sessions["s"].frames_ingested == 5
        fleet.checkpoint("s", 4)

        other = FleetSupervisor(store=store, config=cfg)
        resumed = other.resume(spec("s"))
        assert resumed.frames_ingested == 5
        assert resumed.frames_processed == 5

    def test_v1_payload_restores_with_reconstructed_counter(self):
        """Pre-``frames_ingested`` checkpoints (schema v1) still resume:
        the counter is reconstructed as ``frames_processed`` because a
        resume starts from an empty queue."""
        cfg = FleetConfig()
        fleet = FleetSupervisor(config=cfg)
        session = fleet.register(spec("s"))
        for tick in range(3):
            fleet.ingest("s", nominal_frame(tick))
            fleet.tick(tick)
        v1 = session.snapshot_payload(2)
        del v1["frames_ingested"]
        v1["version"] = 1

        fresh = FleetSession(spec("s"), cfg)
        fresh.quarantined = True
        fresh.quarantine_reason = "stale"
        fresh.restore_payload(v1)
        assert fresh.frames_ingested == 3
        assert fresh.frames_processed == 3
        assert fresh.digest == session.digest
        # Transient per-run state restarts clean on restore.
        assert not fresh.quarantined
        assert fresh.quarantine_reason is None
        assert fresh.last_frame is None

    def test_unknown_snapshot_version_is_rejected(self):
        cfg = FleetConfig()
        session = FleetSession(spec("s"), cfg)
        bad = session.snapshot_payload(0)
        bad["version"] = 99
        with pytest.raises(ValueError, match="snapshot version"):
            session.restore_payload(bad)


class TestDrain:
    def test_drain_checkpoints_every_live_session(self, store):
        # Cadence far beyond the run: nothing persists except tick 0.
        cfg = FleetConfig(checkpoint_every=1000)
        fleet = FleetSupervisor(store=store, config=cfg)
        for i in range(3):
            fleet.register(spec(session_id(i)))
        for tick in range(12):
            for i in range(3):
                fleet.ingest(session_id(i), frame_for(4, i, tick))
            fleet.tick(tick)
        digests = {sid: fleet.sessions[sid].digest for sid in fleet.sessions}

        drained = fleet.drain()
        assert drained == [session_id(i) for i in range(3)]

        # A fresh supervisor resumes every session from the drained state,
        # bit-identically — nothing past the last cadence point was lost.
        other = FleetSupervisor(store=store, config=cfg)
        for i in range(3):
            resumed = other.resume(spec(session_id(i)))
            assert resumed.digest == digests[session_id(i)]
            assert resumed.frames_processed == 12
            assert resumed.last_checkpoint_tick == 11

    def test_drain_skips_sessions_already_current(self, store):
        fleet = FleetSupervisor(store=store, config=FleetConfig(checkpoint_every=1000))
        fleet.register(spec("s"))
        for tick in range(5):
            fleet.ingest("s", nominal_frame(tick))
            fleet.tick(tick)
        fleet.checkpoint("s", 4)
        version = fleet.sessions["s"].checkpoint_version

        # Already checkpointed at the last completed tick: drain reports
        # it as drained but writes no redundant snapshot.
        assert fleet.drain() == ["s"]
        assert fleet.sessions["s"].checkpoint_version == version

    def test_drain_store_failure_quarantines_not_fatal(self):
        flaky = _FlakyStore(failures=0)
        fleet = FleetSupervisor(
            store=flaky,
            config=FleetConfig(
                checkpoint_every=1000, store_retries=0, store_backoff_s=0.0
            ),
        )
        fleet.register(spec("a"))
        fleet.register(spec("b"))
        for tick in range(3):
            fleet.ingest("a", nominal_frame(tick))
            fleet.ingest("b", nominal_frame(tick))
            fleet.tick(tick)
        # The next save (session "a", registration order) blows up;
        # "b" must still flush.
        flaky.failures = flaky.attempts + 1
        drained = fleet.drain()
        assert drained == ["b"]
        assert fleet.sessions["a"].quarantined
        assert "drain checkpoint failed" in fleet.sessions["a"].quarantine_reason

    def test_drain_excludes_quarantined_sessions(self, store):
        fleet = FleetSupervisor(store=store, config=FleetConfig())
        fleet.register(spec("a"))
        fleet.register(spec("b"))
        fleet.ingest("a", nominal_frame(0))
        fleet.ingest("b", nominal_frame(0))
        fleet.tick(0)
        fleet.quarantine("a", "pulled")
        assert fleet.drain() == ["b"]


class TestSimBridge:
    @pytest.mark.slow
    def test_recorded_trace_feeds_a_fleet_session(self):
        from repro.sim.runner import run_fault_free

        trace = run_fault_free(seed=3, duration_s=0.5)
        frames = frames_from_trace(trace)
        assert len(frames) == len(trace)
        fleet = FleetSupervisor(config=FleetConfig(queue_depth=8))
        fleet.register(spec("sim"))
        for tick, frame in enumerate(frames):
            assert fleet.ingest("sim", frame)
            fleet.tick(tick)
        session = fleet.sessions["sim"]
        assert session.frames_processed == len(frames)
        assert not session.quarantined
        assert session.health == "nominal"

"""Tests for repro.hw.usb_packet."""

import pytest

from repro import constants
from repro.control.state_machine import RobotState
from repro.errors import PacketError
from repro.hw.usb_packet import (
    COMMAND_PACKET_SIZE,
    FEEDBACK_PACKET_SIZE,
    decode_command_packet,
    decode_feedback_packet,
    encode_command_packet,
    encode_feedback_packet,
)


class TestCommandPackets:
    def test_size(self):
        data = encode_command_packet(RobotState.PEDAL_DOWN, True, [1, 2, 3])
        assert len(data) == COMMAND_PACKET_SIZE == 18

    def test_roundtrip(self):
        dac = [1200, -800, 32767, -32768, 0, 7, 100, -1]
        data = encode_command_packet(RobotState.PEDAL_DOWN, False, dac)
        packet = decode_command_packet(data)
        assert packet.dac_values == dac
        assert packet.state is RobotState.PEDAL_DOWN
        assert not packet.watchdog
        assert packet.checksum_ok

    def test_watchdog_bit_in_byte0(self):
        lo = encode_command_packet(RobotState.PEDAL_DOWN, False, [0])
        hi = encode_command_packet(RobotState.PEDAL_DOWN, True, [0])
        assert hi[0] == lo[0] | (1 << constants.USB_WATCHDOG_BIT)

    def test_state_nibble_in_byte0(self):
        for state in RobotState:
            data = encode_command_packet(state, False, [])
            assert data[0] == state.byte_value

    def test_short_channel_list_zero_filled(self):
        data = encode_command_packet(RobotState.INIT, False, [5])
        packet = decode_command_packet(data)
        assert packet.dac_values[1:] == [0] * 7

    def test_too_many_channels_rejected(self):
        with pytest.raises(PacketError):
            encode_command_packet(RobotState.INIT, False, list(range(9)))

    def test_out_of_range_dac_rejected(self):
        with pytest.raises(PacketError):
            encode_command_packet(RobotState.INIT, False, [40000])

    def test_wrong_length_rejected(self):
        with pytest.raises(PacketError):
            decode_command_packet(b"\x00" * 5)

    def test_corrupted_packet_decodes_with_bad_checksum(self):
        # The decoder reports, but does not enforce, integrity — the boards
        # execute corrupted packets (the paper's vulnerability).
        data = bytearray(encode_command_packet(RobotState.PEDAL_DOWN, True, [100]))
        data[2] ^= 0xFF
        packet = decode_command_packet(bytes(data))
        assert not packet.checksum_ok
        assert packet.dac_values[0] != 100


class TestFeedbackPackets:
    def test_size(self):
        data = encode_feedback_packet(RobotState.PEDAL_UP, True, [1, 2, 3])
        assert len(data) == FEEDBACK_PACKET_SIZE == 26

    def test_roundtrip(self):
        counts = [100000, -100000, 8388607, -8388608, 0, 1, -1, 42]
        data = encode_feedback_packet(RobotState.PEDAL_DOWN, True, counts)
        packet = decode_feedback_packet(data)
        assert packet.encoder_counts == counts
        assert packet.state is RobotState.PEDAL_DOWN
        assert packet.watchdog
        assert packet.checksum_ok

    def test_out_of_range_count_rejected(self):
        with pytest.raises(PacketError):
            encode_feedback_packet(RobotState.INIT, False, [1 << 23])

    def test_too_many_channels_rejected(self):
        with pytest.raises(PacketError):
            encode_feedback_packet(RobotState.INIT, False, [0] * 9)

    def test_wrong_length_rejected(self):
        with pytest.raises(PacketError):
            decode_feedback_packet(b"\x00" * COMMAND_PACKET_SIZE)

    def test_tampered_feedback_flagged(self):
        data = bytearray(encode_feedback_packet(RobotState.INIT, False, [5]))
        data[3] ^= 0x10
        assert not decode_feedback_packet(bytes(data)).checksum_ok

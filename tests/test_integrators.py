"""Tests for repro.dynamics.integrators."""

import math

import numpy as np
import pytest

from repro.dynamics.integrators import (
    EVALUATIONS_PER_STEP,
    INTEGRATORS,
    euler_step,
    get_integrator,
    heun_step,
    integrate_fixed,
    midpoint_step,
    rk4_step,
)
from repro.errors import IntegrationError


def exponential_decay(_t, y):
    return -y


class TestSteppers:
    @pytest.mark.parametrize("name", sorted(INTEGRATORS))
    def test_decay_stays_bounded(self, name):
        stepper = INTEGRATORS[name]
        y = np.array([1.0])
        for _ in range(100):
            y = stepper(exponential_decay, 0.0, y, 0.01)
        assert 0.0 < y[0] < 1.0

    def test_euler_first_order_error(self):
        # Error for y' = -y over [0, 1] halves with the step size.
        def solve(h):
            y = integrate_fixed(exponential_decay, 0, np.array([1.0]), h,
                                int(1 / h), "euler")
            return abs(y[0] - math.exp(-1))

        assert solve(0.01) / solve(0.005) == pytest.approx(2.0, rel=0.1)

    def test_rk4_fourth_order_error(self):
        def solve(h):
            y = integrate_fixed(exponential_decay, 0, np.array([1.0]), h,
                                int(1 / h), "rk4")
            return abs(y[0] - math.exp(-1))

        assert solve(0.02) / solve(0.01) == pytest.approx(16.0, rel=0.3)

    def test_rk4_more_accurate_than_euler(self):
        h, steps = 0.05, 20
        exact = math.exp(-1)
        e_err = abs(integrate_fixed(exponential_decay, 0, np.array([1.0]), h, steps, "euler")[0] - exact)
        r_err = abs(integrate_fixed(exponential_decay, 0, np.array([1.0]), h, steps, "rk4")[0] - exact)
        assert r_err < e_err / 100

    @pytest.mark.parametrize("stepper", [euler_step, midpoint_step, heun_step, rk4_step])
    def test_harmonic_oscillator_energy(self, stepper):
        # x'' = -x: all methods should track one period roughly.
        def f(_t, y):
            return np.array([y[1], -y[0]])

        y = np.array([1.0, 0.0])
        h = 2 * math.pi / 2000
        for _ in range(2000):
            y = stepper(f, 0.0, y, h)
        assert np.allclose(y, [1.0, 0.0], atol=0.02)

    def test_nan_state_raises(self):
        def bad(_t, y):
            return y * np.nan

        with pytest.raises(IntegrationError):
            euler_step(bad, 0.0, np.array([1.0]), 0.1)


class TestRegistry:
    def test_get_integrator_known(self):
        assert get_integrator("euler") is euler_step
        assert get_integrator("rk4") is rk4_step

    def test_get_integrator_unknown(self):
        with pytest.raises(KeyError, match="unknown integrator"):
            get_integrator("rk45")

    def test_evaluation_counts(self):
        calls = {"n": 0}

        def f(_t, y):
            calls["n"] += 1
            return -y

        for name, expected in EVALUATIONS_PER_STEP.items():
            calls["n"] = 0
            INTEGRATORS[name](f, 0.0, np.array([1.0]), 0.01)
            assert calls["n"] == expected, name

    def test_integrate_fixed_negative_steps(self):
        with pytest.raises(ValueError):
            integrate_fixed(exponential_decay, 0, np.array([1.0]), 0.1, -1)

    def test_integrate_fixed_zero_steps_identity(self):
        y0 = np.array([3.0])
        assert integrate_fixed(exponential_decay, 0, y0, 0.1, 0)[0] == 3.0

"""Integration tests: the full simulation rig end to end.

These use short runs (~1 second of simulated surgery) to keep the suite
fast while still exercising console -> network -> controller -> USB ->
plant -> PLC wiring, the attacks, and the detector.
"""

import numpy as np
import pytest

from repro.control.state_machine import RobotState
from repro.core.mitigation import MitigationStrategy
from repro.errors import SimulationError
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.runner import (
    make_detector_guard,
    run_fault_free,
    run_scenario_a,
    run_scenario_b,
)

DURATION = 1.1
ATTACK_DELAY = 150


@pytest.fixture(scope="module")
def fault_free_trace():
    return run_fault_free(seed=11, duration_s=DURATION)


class TestFaultFreeRun:
    def test_reaches_pedal_down_and_stays(self, fault_free_trace):
        assert fault_free_trace.states[-1] is RobotState.PEDAL_DOWN
        assert fault_free_trace.pedal_down_fraction() > 0.5

    def test_no_estops(self, fault_free_trace):
        assert not fault_free_trace.estop_occurred()
        assert not fault_free_trace.safety_trip_cycles

    def test_robot_moves_smoothly(self, fault_free_trace):
        tips = fault_free_trace.tip_array
        assert np.linalg.norm(tips.max(axis=0) - tips.min(axis=0)) > 1e-3
        assert not fault_free_trace.adverse_impact()

    def test_deterministic_replay(self, fault_free_trace):
        replay = run_fault_free(seed=11, duration_s=DURATION)
        assert np.allclose(replay.tip_array, fault_free_trace.tip_array)

    def test_different_seeds_differ(self, fault_free_trace):
        other = run_fault_free(seed=12, duration_s=DURATION)
        assert not np.allclose(other.tip_array, fault_free_trace.tip_array)


class TestRigConfig:
    def test_bad_duration_rejected(self):
        with pytest.raises(SimulationError):
            RigConfig(duration_s=0.0)

    def test_pedal_before_start_rejected(self):
        with pytest.raises(SimulationError):
            RigConfig(pedal_press_s=0.01, start_button_s=0.05)

    def test_pedal_release_returns_to_pedal_up(self):
        config = RigConfig(
            seed=3, duration_s=1.2, pedal_press_s=0.4, pedal_release_s=0.9
        )
        trace = SurgicalRig(config).run()
        assert trace.states[-1] is RobotState.PEDAL_UP


class TestScenarioB:
    def test_attack_fires_in_pedal_down(self):
        result = run_scenario_b(
            seed=11, error_dac=18000, period_ms=32, duration_s=DURATION,
            attack_delay_cycles=ATTACK_DELAY,
        )
        assert result.record.fired
        assert result.record.activations == 32
        first = result.trace.attack_first_cycle
        assert result.trace.states[first] is RobotState.PEDAL_DOWN

    def test_attack_causes_deviation(self, fault_free_trace):
        result = run_scenario_b(
            seed=11, error_dac=24000, period_ms=64, duration_s=DURATION,
            attack_delay_cycles=ATTACK_DELAY, raven_safety_enabled=False,
        )
        assert result.trace.max_deviation_from(fault_free_trace) > 1e-3

    def test_small_attack_absorbed_by_pid(self, fault_free_trace):
        result = run_scenario_b(
            seed=11, error_dac=2000, period_ms=8, duration_s=DURATION,
            attack_delay_cycles=ATTACK_DELAY, raven_safety_enabled=False,
        )
        assert result.trace.max_deviation_from(fault_free_trace) < 1e-3

    def test_detector_blocks_attack(self, loose_thresholds, fault_free_trace):
        guard = make_detector_guard(
            loose_thresholds, strategy=MitigationStrategy.BLOCK
        )
        result = run_scenario_b(
            seed=11, error_dac=30000, period_ms=64, duration_s=DURATION,
            attack_delay_cycles=ATTACK_DELAY, guard=guard,
        )
        assert guard.stats.alerted
        assert guard.stats.blocked > 0
        # Mitigation success metric: the abrupt jump (what tears tissue)
        # is smaller than in the unprotected run.  The run may still end
        # halted (a safe state), so deviation from the moving fault-free
        # reference is *not* the right metric here.
        unprotected = run_scenario_b(
            seed=11, error_dac=30000, period_ms=64, duration_s=DURATION,
            attack_delay_cycles=ATTACK_DELAY, raven_safety_enabled=False,
        )
        protected_jump = result.trace.max_jump(window_s=10e-3)
        raw_jump = unprotected.trace.max_jump(window_s=10e-3)
        assert protected_jump < raw_jump

    def test_estop_mitigation_halts_robot(self, loose_thresholds):
        guard = make_detector_guard(
            loose_thresholds, strategy=MitigationStrategy.BLOCK_AND_ESTOP
        )
        result = run_scenario_b(
            seed=11, error_dac=30000, period_ms=64, duration_s=DURATION,
            attack_delay_cycles=ATTACK_DELAY, guard=guard,
        )
        assert guard.stats.alerted
        assert any("detector" in r for r in result.trace.estop_reasons)
        # After the brakes clamp the robot is motionless to the end.
        assert np.allclose(result.trace.jvel_array[-1], 0.0)


class TestScenarioA:
    def test_user_input_attack_hijacks_position(self, fault_free_trace):
        result = run_scenario_a(
            seed=11, error_mm=0.3, period_ms=16, duration_s=DURATION,
            attack_delay_cycles=ATTACK_DELAY, raven_safety_enabled=False,
        )
        assert result.record.fired
        assert result.trace.max_deviation_from(fault_free_trace) > 1e-3

    def test_detector_sees_scenario_a(self, fault_free_trace):
        from repro.sim.runner import train_thresholds

        # Minimal but real calibration so the alarm thresholds are sane.
        thresholds = train_thresholds(num_runs=2, duration_s=1.0)
        guard = make_detector_guard(thresholds)
        result = run_scenario_a(
            seed=11, error_mm=0.3, period_ms=16, duration_s=DURATION,
            attack_delay_cycles=ATTACK_DELAY, guard=guard,
        )
        assert guard.stats.alerted
        first_alert = guard.stats.first_alert_cycle
        assert first_alert is not None


class TestDetectorGuardInRig:
    def test_guard_quiet_on_fault_free_run(self, loose_thresholds):
        guard = make_detector_guard(loose_thresholds)
        trace = run_fault_free(seed=13, duration_s=DURATION, guard=guard)
        assert guard.stats.packets_evaluated > 0
        assert not guard.stats.alerted
        assert trace.detector_alert_cycles == []

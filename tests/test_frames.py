"""Tests for repro.kinematics.frames."""

import math

import numpy as np
import pytest

from repro.kinematics.frames import (
    angle_between,
    matrix_to_quat,
    quat_conjugate,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_to_matrix,
    rot_x,
    rot_y,
    rot_z,
    skew,
)


class TestRotationMatrices:
    def test_rot_z_rotates_x_to_y(self):
        out = rot_z(math.pi / 2) @ np.array([1.0, 0.0, 0.0])
        assert np.allclose(out, [0.0, 1.0, 0.0], atol=1e-12)

    def test_rot_x_rotates_y_to_z(self):
        out = rot_x(math.pi / 2) @ np.array([0.0, 1.0, 0.0])
        assert np.allclose(out, [0.0, 0.0, 1.0], atol=1e-12)

    def test_rot_y_rotates_z_to_x(self):
        out = rot_y(math.pi / 2) @ np.array([0.0, 0.0, 1.0])
        assert np.allclose(out, [1.0, 0.0, 0.0], atol=1e-12)

    @pytest.mark.parametrize("fn", [rot_x, rot_y, rot_z])
    def test_orthonormal(self, fn):
        m = fn(0.7)
        assert np.allclose(m @ m.T, np.eye(3), atol=1e-12)
        assert math.isclose(np.linalg.det(m), 1.0, abs_tol=1e-12)

    @pytest.mark.parametrize("fn", [rot_x, rot_y, rot_z])
    def test_inverse_is_negative_angle(self, fn):
        assert np.allclose(fn(0.3) @ fn(-0.3), np.eye(3), atol=1e-12)


class TestQuaternions:
    def test_normalize_unit(self):
        q = quat_normalize(np.array([2.0, 0.0, 0.0, 0.0]))
        assert np.allclose(q, [1.0, 0.0, 0.0, 0.0])

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            quat_normalize(np.zeros(4))

    def test_multiply_identity(self):
        q = quat_normalize(np.array([0.9, 0.1, -0.2, 0.3]))
        identity = np.array([1.0, 0.0, 0.0, 0.0])
        assert np.allclose(quat_multiply(identity, q), q)
        assert np.allclose(quat_multiply(q, identity), q)

    def test_conjugate_inverts_rotation(self):
        q = quat_normalize(np.array([0.8, 0.3, -0.1, 0.5]))
        v = np.array([0.2, -0.5, 1.0])
        assert np.allclose(quat_rotate(quat_conjugate(q), quat_rotate(q, v)), v)

    def test_rotate_matches_matrix(self):
        q = quat_normalize(np.array([0.7, -0.4, 0.2, 0.1]))
        v = np.array([1.0, 2.0, 3.0])
        assert np.allclose(quat_rotate(q, v), quat_to_matrix(q) @ v)

    def test_matrix_quat_roundtrip(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            q = quat_normalize(rng.standard_normal(4))
            if q[0] < 0:
                q = -q
            q2 = matrix_to_quat(quat_to_matrix(q))
            assert np.allclose(q, q2, atol=1e-9)

    def test_matrix_to_quat_all_branches(self):
        # Diagonal-dominant matrices exercise every Shepperd branch.
        for axis_fn, angle in [(rot_x, math.pi - 0.01), (rot_y, math.pi - 0.01),
                               (rot_z, math.pi - 0.01), (rot_x, 0.01)]:
            m = axis_fn(angle)
            q = matrix_to_quat(m)
            assert np.allclose(quat_to_matrix(q), m, atol=1e-9)


class TestVectorHelpers:
    def test_angle_between_orthogonal(self):
        assert math.isclose(
            angle_between(np.array([1, 0, 0]), np.array([0, 1, 0])),
            math.pi / 2,
        )

    def test_angle_between_zero_raises(self):
        with pytest.raises(ValueError):
            angle_between(np.zeros(3), np.array([1.0, 0, 0]))

    def test_skew_cross_product(self):
        a = np.array([0.3, -1.2, 2.0])
        b = np.array([1.0, 0.5, -0.7])
        assert np.allclose(skew(a) @ b, np.cross(a, b))

"""Detection-as-a-service: wire protocol, workers, chaos at the boundary.

The contract under test, layer by layer:

- the length-prefixed canonical-JSON protocol round-trips frames and
  session specs exactly, and rejects malformed, oversized, or
  wrong-version messages before they reach a supervisor;
- a worker answers a poisoned connection with an error response and
  hangs up — the sessions it hosts keep running;
- bounded per-session queues push back over the wire (``accepted:
  false``), they never silently shed frames;
- SIGTERM drains: every live session is checkpointed to the shared
  store before the worker process exits, and a fresh supervisor resumes
  the drained state bit-identically;
- **the differential golden**: a campaign streamed through the
  frontend→worker-pool path — including a worker SIGKILL mid-stream and
  the resulting session re-homing — produces decision hash chains
  byte-identical to the pinned in-process fingerprints.
"""

from __future__ import annotations

import asyncio
import json
import struct

import pytest

from repro.errors import ProtocolError, ServiceError
from repro.experiments.fleet import frame_for, session_id
from repro.experiments.service import (
    run_inprocess_reference,
    run_service_campaign,
)
from repro.fleet import (
    FleetConfig,
    FleetSupervisor,
    InMemorySessionStore,
    SessionSpec,
    SqliteSessionStore,
    TelemetryFrame,
)
from repro.service import (
    PROTOCOL_VERSION,
    RemoteOpError,
    ServiceClient,
    ServiceConfig,
    ServiceWorker,
    WorkerProcess,
    shard_for,
)
from repro.service.http import render, start_http_server
from repro.service.protocol import (
    decode_body,
    encode_message,
    frame_from_wire,
    frame_to_wire,
    request,
    spec_from_wire,
    spec_to_wire,
)

pytestmark = pytest.mark.service

# The exact constants the pinned "fleet_campaign" golden was recorded
# with (tests/test_golden_traces.py): the service path must reproduce
# those bytes over the wire.
_SESSIONS = 3
_TICKS = 48
_SEED = 11
_KILL_TICK = 23


def _fleet_config() -> FleetConfig:
    return FleetConfig(checkpoint_every=8)


def _frame(tick: int = 0) -> TelemetryFrame:
    return TelemetryFrame(
        tick=tick, dac=(100, -3, 7), pedal_down=True, mpos=(0.1, -0.2, 0.3)
    )


def _spec(sid: str, thresholds) -> SessionSpec:
    return SessionSpec(session_id=sid, thresholds=thresholds)


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_message_round_trip_is_canonical(self):
        payload = {"v": PROTOCOL_VERSION, "id": 3, "op": "health", "b": [1, 2]}
        blob = encode_message(payload)
        (length,) = struct.unpack(">I", blob[:4])
        assert length == len(blob) - 4
        assert decode_body(blob[4:]) == payload
        # Canonical: key order in the input never changes the bytes.
        shuffled = {"op": "health", "b": [1, 2], "id": 3, "v": PROTOCOL_VERSION}
        assert encode_message(shuffled) == blob

    def test_frame_codec_round_trip(self):
        frame = _frame(7)
        assert frame_from_wire(frame_to_wire(frame)) == frame
        dark = TelemetryFrame(tick=9, dac=(0, 0, 0), pedal_down=False, mpos=None)
        assert frame_from_wire(frame_to_wire(dark)) == dark

    def test_spec_codec_round_trip(self, loose_thresholds):
        spec = _spec("rig-007", loose_thresholds)
        decoded = spec_from_wire(spec_to_wire(spec))
        assert decoded.session_id == "rig-007"
        assert decoded.thresholds.to_dict() == spec.thresholds.to_dict()
        assert decoded.strategy is spec.strategy
        assert decoded.fusion is spec.fusion
        # The codec survives a JSON round trip (what actually hits the wire).
        rewired = json.loads(json.dumps(spec_to_wire(spec)))
        assert spec_from_wire(rewired).thresholds.to_dict() == spec.thresholds.to_dict()

    def test_oversized_body_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds cap"):
            decode_body(b"x" * 65, max_bytes=64)

    def test_non_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_body(b"\xff\xfe{{{")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_body(b"[1,2,3]")

    def test_version_mismatch_rejected(self):
        body = json.dumps({"v": 99, "id": 0, "op": "health"}).encode()
        with pytest.raises(ProtocolError, match="unsupported protocol version"):
            decode_body(body)

    def test_bool_is_not_an_int_field(self):
        wire = frame_to_wire(_frame())
        wire["tick"] = True
        with pytest.raises(ProtocolError, match="must not be a bool"):
            frame_from_wire(wire)

    def test_missing_field_rejected(self):
        wire = frame_to_wire(_frame())
        del wire["dac"]
        with pytest.raises(ProtocolError, match="missing required field"):
            frame_from_wire(wire)

    def test_unknown_op_rejected_client_side(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            request("format_disk", 0)


class TestSharding:
    def test_placement_is_deterministic(self):
        workers = ["w0", "w1", "w2"]
        for sid in (session_id(i) for i in range(20)):
            assert shard_for(sid, workers) == shard_for(sid, list(reversed(workers)))

    def test_worker_loss_moves_only_its_sessions(self):
        workers = ["w0", "w1", "w2", "w3"]
        sids = [session_id(i) for i in range(64)]
        before = {sid: shard_for(sid, workers) for sid in sids}
        survivors = [w for w in workers if w != "w1"]
        after = {sid: shard_for(sid, survivors) for sid in sids}
        for sid in sids:
            if before[sid] != "w1":
                # Minimal disruption: everyone else stays put.
                assert after[sid] == before[sid]
            else:
                assert after[sid] in survivors

    def test_empty_pool_raises(self):
        with pytest.raises(ServiceError, match="no workers"):
            shard_for("rig-000", [])


# ---------------------------------------------------------------------------
# In-process worker (asyncio loopback, no child processes)
# ---------------------------------------------------------------------------


def _service_config(**kwargs) -> ServiceConfig:
    defaults = dict(host="127.0.0.1", port=0)
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


async def _with_worker(body, fleet_config=None, service_config=None):
    """Run ``body(worker)`` against a started in-process worker."""
    worker = ServiceWorker(
        "test-w",
        InMemorySessionStore(),
        config=service_config or _service_config(),
        fleet_config=fleet_config,
    )
    await worker.start()
    serve = asyncio.ensure_future(worker.serve_until_stopped())
    try:
        return await body(worker)
    finally:
        worker.request_stop()
        await serve


class TestWorkerLoopback:
    def test_register_ingest_tick_decisions(self, loose_thresholds):
        async def body(worker):
            client = await ServiceClient("127.0.0.1", worker.port).connect()
            try:
                sid = await client.register(_spec("rig-000", loose_thresholds))
                assert sid == "rig-000"
                assert await client.ingest(sid, frame_for(_SEED, 0, 0))
                ticked = await client.tick(0)
                assert ticked["report"]["frames_processed"] == 1
                assert len(ticked["decisions"][sid]) == 1
                record = ticked["decisions"][sid][0]
                assert record["tick"] == 0 and "alert" in record
                health = await client.health()
                assert health["status"] == "ok"
                assert health["sessions"] == 1 and health["decisions"] == 1
                return worker.tenant_decisions
            finally:
                await client.close()

        tenants = asyncio.run(_with_worker(body))
        assert tenants == {"rig-000": 1}

    def test_backpressure_surfaces_over_the_wire(self, loose_thresholds):
        async def body(worker):
            client = await ServiceClient("127.0.0.1", worker.port).connect()
            try:
                sid = await client.register(_spec("rig-000", loose_thresholds))
                verdicts = [
                    await client.ingest(sid, frame_for(_SEED, 0, t))
                    for t in range(3)
                ]
                # queue_depth=2: the third frame is rejected, not shed.
                assert verdicts == [True, True, False]
                await client.tick(0)
                assert await client.ingest(sid, frame_for(_SEED, 0, 3))
                return (await client.fingerprints())[sid]["frames_rejected"]
            finally:
                await client.close()

        rejected = asyncio.run(
            _with_worker(body, fleet_config=FleetConfig(queue_depth=2))
        )
        assert rejected == 1

    def test_remote_errors_carry_the_exception_kind(self, loose_thresholds):
        async def body(worker):
            client = await ServiceClient("127.0.0.1", worker.port).connect()
            try:
                with pytest.raises(RemoteOpError) as err:
                    await client.ingest("ghost", _frame())
                assert err.value.kind == "FleetError"
                with pytest.raises(RemoteOpError) as err:
                    await client.resume(_spec("never-stored", loose_thresholds))
                assert err.value.kind == "FleetError"
                # The faults journal saw both; the connection still works.
                assert (await client.health())["faults"] == 2
                return list(worker.faults)
            finally:
                await client.close()

        faults = asyncio.run(_with_worker(body))
        assert len(faults) == 2 and all("FleetError" in f for f in faults)

    def test_malformed_bytes_get_error_then_hangup(self, loose_thresholds):
        async def body(worker):
            client = await ServiceClient("127.0.0.1", worker.port).connect()
            sid = await client.register(_spec("rig-000", loose_thresholds))
            await client.ingest(sid, frame_for(_SEED, 0, 0))
            await client.close()

            # A hostile peer: valid prefix, garbage body.
            reader, writer = await asyncio.open_connection("127.0.0.1", worker.port)
            garbage = b"\xffnot json at all"
            writer.write(struct.pack(">I", len(garbage)) + garbage)
            await writer.drain()
            from repro.service.protocol import read_message

            answer = await read_message(reader)
            assert answer["ok"] is False and answer["kind"] == "ProtocolError"
            assert await reader.read() == b""  # worker hung up on the peer
            writer.close()
            await writer.wait_closed()

            # The worker (and its session) survived the poisoned peer.
            fresh = await ServiceClient("127.0.0.1", worker.port).connect()
            try:
                ticked = await fresh.tick(0)
                assert ticked["report"]["frames_processed"] == 1
                assert (await fresh.health())["status"] == "ok"
            finally:
                await fresh.close()

        asyncio.run(_with_worker(body))

    def test_oversized_announcement_never_allocates(self):
        async def body(worker):
            reader, writer = await asyncio.open_connection("127.0.0.1", worker.port)
            # Announce 1 GiB; the cap trips on the prefix alone.
            writer.write(struct.pack(">I", 1 << 30))
            await writer.drain()
            from repro.service.protocol import read_message

            answer = await read_message(reader)
            assert answer["ok"] is False and answer["kind"] == "ProtocolError"
            assert "exceeds cap" in answer["error"]
            writer.close()
            await writer.wait_closed()

        asyncio.run(
            _with_worker(
                body, service_config=_service_config(max_frame_bytes=4096)
            )
        )

    def test_http_surface(self, loose_thresholds):
        async def body(worker):
            server = await start_http_server(worker, "127.0.0.1", 0)
            port = int(server.sockets[0].getsockname()[1])
            client = await ServiceClient("127.0.0.1", worker.port).connect()
            try:
                sid = await client.register(_spec("rig-000", loose_thresholds))
                await client.ingest(sid, frame_for(_SEED, 0, 0))
                await client.tick(0)

                async def get(path):
                    r, w = await asyncio.open_connection("127.0.0.1", port)
                    w.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
                    await w.drain()
                    raw = await r.read()
                    w.close()
                    await w.wait_closed()
                    head, _, body = raw.partition(b"\r\n\r\n")
                    return head.split(b" ", 2)[1], body

                status, body_ = await get("/healthz")
                assert status == b"200"
                assert json.loads(body_)["sessions"] == 1
                status, body_ = await get("/tenants")
                assert json.loads(body_)["rig-000"]["decisions"] == 1
                status, body_ = await get("/metrics?prefix=repro_svc_")
                assert status == b"200"  # empty body: REPRO_OBS is off
                status, _ = await get("/nowhere")
                assert status == b"404"
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(_with_worker(body))

    def test_http_render_rejects_non_get(self):
        worker = ServiceWorker(
            "r", InMemorySessionStore(), config=_service_config()
        )
        assert b"405" in render(worker, "POST", "/healthz").split(b"\r\n")[0]

    def test_stop_drains_every_session(self, loose_thresholds):
        store = InMemorySessionStore()

        async def scenario():
            worker = ServiceWorker(
                "drainer",
                store,
                config=_service_config(),
                fleet_config=FleetConfig(checkpoint_every=1000),
            )
            await worker.start()
            serve = asyncio.ensure_future(worker.serve_until_stopped())
            client = await ServiceClient("127.0.0.1", worker.port).connect()
            for i in range(2):
                await client.register(_spec(session_id(i), loose_thresholds))
            for t in range(5):
                for i in range(2):
                    await client.ingest(session_id(i), frame_for(_SEED, i, t))
                await client.tick(t)
            digests = {
                sid: fp["digest"]
                for sid, fp in (await client.fingerprints()).items()
            }
            await client.shutdown()
            drained = await serve
            await client.close()
            return digests, drained

        digests, drained = asyncio.run(scenario())
        assert drained == [session_id(0), session_id(1)]
        # The drained checkpoints resume bit-identically in a new process.
        resumed = FleetSupervisor(store=store, config=FleetConfig())
        for i in range(2):
            session = resumed.resume(_spec(session_id(i), loose_thresholds))
            assert session.digest == digests[session_id(i)]
            assert session.frames_processed == 5


# ---------------------------------------------------------------------------
# Chaos + differential goldens (spawned worker pool, shared sqlite store)
# ---------------------------------------------------------------------------


@pytest.mark.golden
class TestServiceGoldens:
    """Over-the-wire decisions must equal the pinned in-process bytes."""

    def test_service_campaign_matches_fleet_golden(self, golden, tmp_path):
        result = run_service_campaign(
            str(tmp_path / "svc.sqlite"),
            num_sessions=_SESSIONS,
            ticks=_TICKS,
            seed=_SEED,
            workers=2,
            fleet=_fleet_config(),
        )
        assert result.ticks_run == _TICKS
        assert not result.dead_workers and not result.lost
        # Both workers flushed their shards on shutdown.
        assert sorted(
            sid for ids in result.drained.values() for sid in ids
        ) == [session_id(i) for i in range(_SESSIONS)]
        golden.check("fleet_campaign", result.fingerprints)

    def test_worker_sigkill_rehomes_to_the_same_golden(self, golden, tmp_path):
        result = run_service_campaign(
            str(tmp_path / "svc.sqlite"),
            num_sessions=_SESSIONS,
            ticks=_TICKS,
            seed=_SEED,
            workers=2,
            fleet=_fleet_config(),
            kill_worker=(_KILL_TICK, "w1"),
        )
        assert result.dead_workers == ["w1"]
        assert result.rehomed and not result.lost
        # Replayed frames mean extra tick rounds — and every re-homed
        # session now lives on the survivor.
        assert result.ticks_run > _TICKS
        assert set(result.owners.values()) == {"w0"}
        golden.check("fleet_campaign", result.fingerprints)

    @pytest.mark.slow
    @pytest.mark.campaign
    def test_scenario_b_streams_differentially_identical(
        self, tmp_path, loose_thresholds
    ):
        """Recorded attack telemetry, streamed through the service with a
        mid-campaign worker kill, decides byte-identically to an
        in-process supervisor fed the same streams."""
        import numpy as np

        from repro.core.thresholds import SafetyThresholds
        from repro.experiments.fleet import frames_from_trace
        from repro.sim.runner import run_scenario_b

        # The replayed stream hands the *attacked* DAC to the model too,
        # so residuals are smaller than in-sim: tighten the envelope to
        # keep the detector firing (the point is alert-bearing chains).
        thresholds = SafetyThresholds(
            motor_velocity=np.asarray(loose_thresholds.motor_velocity) * 0.1,
            motor_acceleration=np.asarray(loose_thresholds.motor_acceleration) * 0.1,
            joint_velocity=np.asarray(loose_thresholds.joint_velocity) * 0.1,
        )
        streams = [
            frames_from_trace(
                run_scenario_b(
                    seed=_SEED + i,
                    error_dac=12000,
                    period_ms=300,
                    duration_s=1.2,
                    raven_safety_enabled=False,
                ).trace
            )
            for i in range(2)
        ]
        baseline = run_inprocess_reference(
            streams, thresholds=thresholds, fleet=_fleet_config()
        )
        # The attack must actually trip the detector, or the equality
        # below proves nothing interesting.
        assert any(fp["stats"]["alerts"] > 0 for fp in baseline.values())

        service = run_service_campaign(
            str(tmp_path / "svc.sqlite"),
            workers=2,
            fleet=_fleet_config(),
            thresholds=thresholds,
            streams=streams,
            kill_worker=(10, "w0"),
        )
        assert service.dead_workers == ["w0"]
        assert service.fingerprints == baseline


@pytest.mark.chaos
class TestServiceChaos:
    def test_terminate_mid_campaign_loses_nothing(self, tmp_path, loose_thresholds):
        """SIGTERM (not SIGKILL): checkpoint-on-drain flushes live state,
        so a resume picks up the exact digests the worker died with."""
        db = str(tmp_path / "svc.sqlite")
        proc = WorkerProcess(
            "solo", db, fleet_config=FleetConfig(checkpoint_every=1000)
        ).start()

        async def drive():
            client = await ServiceClient(*proc.address).connect()
            try:
                for i in range(2):
                    await client.register(_spec(session_id(i), loose_thresholds))
                for t in range(7):
                    for i in range(2):
                        await client.ingest(session_id(i), frame_for(_SEED, i, t))
                    await client.tick(t)
                return {
                    sid: fp["digest"]
                    for sid, fp in (await client.fingerprints()).items()
                }
            finally:
                await client.close()

        digests = asyncio.run(drive())
        proc.terminate()
        assert proc.wait(timeout=30.0) == 0

        resumed = FleetSupervisor(
            store=SqliteSessionStore(db), config=FleetConfig()
        )
        for i in range(2):
            session = resumed.resume(_spec(session_id(i), loose_thresholds))
            assert session.digest == digests[session_id(i)]
            assert session.frames_processed == 7

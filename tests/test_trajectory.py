"""Tests for repro.control.trajectory."""

import numpy as np
import pytest

from repro import constants
from repro.control.trajectory import (
    CircleTrajectory,
    Figure8Trajectory,
    IdleTrajectory,
    SuturingTrajectory,
    TrajectoryLibrary,
    TremorModel,
)


@pytest.fixture
def library():
    return TrajectoryLibrary()


class TestTremorModel:
    def test_zero_amplitude_is_silent(self, rng):
        tremor = TremorModel(rng, amplitude_m=0.0)
        assert np.allclose(tremor.sample(1e-3), 0.0)

    def test_rms_near_amplitude(self, rng):
        tremor = TremorModel(rng, amplitude_m=3e-5)
        samples = np.array([tremor.sample(1e-3) for _ in range(5000)])
        rms = np.sqrt((samples**2).mean())
        assert 0.2 * 3e-5 < rms < 5 * 3e-5

    def test_band_limited(self, rng):
        # The dominant frequency should be near the tremor band, not DC.
        tremor = TremorModel(rng, amplitude_m=1e-4, frequency_hz=9.0)
        xs = np.array([tremor.sample(1e-3)[0] for _ in range(4000)])
        spectrum = np.abs(np.fft.rfft(xs - xs.mean()))
        freqs = np.fft.rfftfreq(len(xs), 1e-3)
        peak = freqs[np.argmax(spectrum)]
        assert 4.0 < peak < 16.0

    def test_negative_amplitude_rejected(self, rng):
        with pytest.raises(ValueError):
            TremorModel(rng, amplitude_m=-1.0)


class TestTrajectoryFamilies:
    def test_idle_stays_at_center(self, library):
        traj = IdleTrajectory(library.center)
        assert np.allclose(traj.position(5.0), library.center)

    def test_circle_returns_after_period(self, library):
        traj = CircleTrajectory(library.center, radius=0.01, period=2.0)
        # After the start envelope, positions repeat with the period.
        p1 = traj.position(3.0)
        p2 = traj.position(5.0)
        assert np.allclose(p1, p2, atol=1e-12)

    def test_circle_radius_bounds_offset(self, library):
        traj = CircleTrajectory(library.center, radius=0.01, period=2.0, tilt=0.3)
        for t in np.linspace(0, 10, 200):
            assert np.linalg.norm(traj.offset(t)) <= 2 * 0.01 + 1e-9

    def test_smooth_start_no_velocity_step(self, library):
        traj = CircleTrajectory(library.center, radius=0.02, period=4.0)
        d0 = np.linalg.norm(traj.position(1e-3) - traj.position(0.0))
        assert d0 < 1e-5  # envelope suppresses the initial jump

    def test_figure8_bounded(self, library):
        traj = Figure8Trajectory(library.center, width=0.02, height=0.01)
        for t in np.linspace(0, 12, 300):
            off = traj.offset(t)
            assert abs(off[0]) <= 0.02 + 1e-9
            assert abs(off[1]) <= 0.01 + 1e-9

    def test_suturing_advances(self, library):
        traj = SuturingTrajectory(library.center, advance_speed=0.002)
        assert traj.offset(10.0)[1] > traj.offset(2.0)[1]

    def test_invalid_parameters_rejected(self, library):
        with pytest.raises(ValueError):
            CircleTrajectory(library.center, radius=-0.01)
        with pytest.raises(ValueError):
            Figure8Trajectory(library.center, width=0.0)
        with pytest.raises(ValueError):
            SuturingTrajectory(library.center, loop_period=0.0)

    def test_increments_sum_to_displacement(self, library, rng):
        traj = library.make("circle", rng=rng, tremor_amplitude=0.0)
        start = traj.position(0.0)
        increments = list(traj.increments(1.0))
        end = traj.position(1.0)
        assert np.allclose(start + np.sum(increments, axis=0), end, atol=1e-9)

    def test_increments_respect_itp_limit(self, library, rng):
        traj = library.sample(rng)
        for dpos in traj.increments(2.0):
            assert np.all(np.abs(dpos) <= constants.ITP_MAX_INCREMENT_M)


class TestTrajectoryLibrary:
    def test_names(self, library):
        assert set(library.names()) == {"idle", "circle", "figure8", "suturing"}

    def test_make_each_family(self, library, rng):
        for name in library.names():
            traj = library.make(name, rng=rng)
            assert traj.name == name

    def test_make_unknown_raises(self, library):
        with pytest.raises(KeyError):
            library.make("spiral")

    def test_center_is_reachable(self, library):
        assert library.arm.reachable(library.center)

    def test_sample_is_deterministic_per_seed(self, library):
        t1 = library.sample(np.random.default_rng(5))
        t2 = library.sample(np.random.default_rng(5))
        assert t1.name == t2.name
        assert np.allclose(t1.offset(1.2), t2.offset(1.2))

    def test_sample_varies_across_seeds(self, library):
        names = {library.sample(np.random.default_rng(s)).name for s in range(12)}
        assert len(names) > 1

    def test_paper_pair(self, library, rng):
        pair = library.paper_pair(rng)
        assert set(pair) == {"circle", "suturing"}

"""Tests for repro.teleop.console and repro.sim.runner helpers."""

import numpy as np
import pytest

from repro.control.trajectory import CircleTrajectory
from repro.sim.runner import (
    run_model_validation,
    train_thresholds,
)
from repro.teleop.console import MasterConsoleEmulator
from repro.teleop.itp import decode_itp
from repro.teleop.network import UdpChannel
from repro.teleop.pedal import PedalSchedule


@pytest.fixture
def console_setup():
    channel = UdpChannel()
    trajectory = CircleTrajectory(
        center=np.array([0.0, -0.1, -0.05]), radius=0.01, period=2.0
    )
    pedal = PedalSchedule.pressed_during(0.1, 1.0)
    console = MasterConsoleEmulator(
        trajectory, channel, pedal=pedal, motion_start=0.15
    )
    return console, channel


class TestMasterConsoleEmulator:
    def test_emits_one_packet_per_tick(self, console_setup):
        console, channel = console_setup
        for k in range(5):
            console.tick(k * 1e-3)
        assert channel.sent == 5
        assert console.sequence == 5

    def test_sequence_increments(self, console_setup):
        console, channel = console_setup
        console.tick(0.0)
        console.tick(1e-3)
        first = decode_itp(channel.receive(1e-3))
        second = decode_itp(channel.receive(1e-3))
        assert second.sequence == first.sequence + 1

    def test_pedal_state_follows_schedule(self, console_setup):
        console, channel = console_setup
        console.tick(0.0)
        assert not decode_itp(channel.receive(0.0)).pedal_down
        console.tick(0.5)
        assert decode_itp(channel.receive(0.5)).pedal_down

    def test_zero_increments_before_motion_start(self, console_setup):
        console, channel = console_setup
        console.tick(0.11)
        packet = decode_itp(channel.receive(0.11))
        assert np.allclose(packet.dpos, 0.0)

    def test_increments_nonzero_once_moving(self, console_setup):
        console, channel = console_setup
        total = np.zeros(3)
        for k in range(700):
            now = 0.2 + k * 1e-3
            console.tick(now)
            total += np.abs(decode_itp(channel.receive(now)).dpos)
        assert np.linalg.norm(total) > 1e-4

    def test_no_motion_while_pedal_up(self, console_setup):
        console, channel = console_setup
        # After release at t=1.0 the console sends zero increments.
        for k in range(30):
            now = 1.1 + k * 1e-3
            console.tick(now)
            packet = decode_itp(channel.receive(now))
            assert not packet.pedal_down
            assert np.allclose(packet.dpos, 0.0)


class TestTrainThresholds:
    def test_returns_positive_thresholds(self):
        thresholds = train_thresholds(num_runs=2, duration_s=0.9)
        assert np.all(thresholds.motor_velocity > 0)
        assert np.all(thresholds.motor_acceleration > 0)
        assert np.all(thresholds.joint_velocity > 0)

    def test_margin_applied(self):
        base = train_thresholds(num_runs=2, duration_s=0.9)
        wide = train_thresholds(num_runs=2, duration_s=0.9, margin=2.0)
        assert np.allclose(wide.motor_velocity, 2 * base.motor_velocity, rtol=1e-9)


class TestModelValidation:
    def test_produces_errors_and_timing(self):
        result = run_model_validation(
            integrator="euler", seed=2, duration_s=1.2
        )
        assert result.integrator == "euler"
        assert result.mean_step_seconds > 0
        assert result.samples > 300
        assert result.jpos_mae.shape == (3,)
        assert np.all(result.jpos_mae >= 0)

    def test_perfect_model_tracks_closely(self):
        result = run_model_validation(
            integrator="rk4", seed=2, duration_s=1.2, parameter_error=1.0
        )
        # With exact parameters the open-loop model stays near the plant.
        assert np.all(result.jpos_mae < 0.02)

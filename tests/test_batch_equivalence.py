"""Differential equivalence: batched execution is bit-identical to scalar.

The headline guarantee of :mod:`repro.sim.batch`: running N rigs as one
``(N, ...)`` batch yields, per lane, exactly the ``RunTrace`` the scalar
``SurgicalRig`` produces from the same seed — same float64 bits, same
alarm cycles, same blocked packets, same E-STOP reasons.  Every test
here builds the same lanes twice from fresh stateful objects (via
:class:`repro.testing.differential.LaneRecipe`), runs one side scalar
and one side batched, and compares ``RunTrace.fingerprint()`` plus the
guard counters field by field.

Covered regimes: fault-free heterogeneous lanes, scenario A/B attacks
under MONITOR / BLOCK / BLOCK_AND_ESTOP, physical-fault plans with
supervisor degraded modes (coasting, glitch screening, model drift), and
per-lane alarm bookkeeping when multiple lanes alarm in the same cycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AnomalyDetector,
    BatchedAnomalyDetector,
    BatchedNextStateEstimator,
    BatchedStateEstimate,
    DetectorGuard,
    FusionRule,
    GuardSupervisor,
    MitigationStrategy,
    NextStateEstimator,
    RavenDynamicModel,
    SafetyThresholds,
    StateEstimate,
    SupervisorConfig,
)
from repro.sim.batch import BatchedSurgicalRig, LaneSpec
from repro.sim.rig import RigConfig
from repro.sim.runner import make_detector_guard, scenario_a_lane, scenario_b_lane
from repro.testing.differential import (
    EquivalenceReport,
    LaneOutcome,
    LaneRecipe,
    assert_equivalent,
)
from repro.testing.physfaults import PhysFaultPlan

pytestmark = pytest.mark.batch


def detection_thresholds() -> SafetyThresholds:
    """Thresholds that fault-free motion respects but the attacks exceed."""
    return SafetyThresholds(
        motor_velocity=np.array([3.0, 3.0, 8.0]),
        motor_acceleration=np.array([1500.0, 1500.0, 4000.0]),
        joint_velocity=np.array([0.25, 0.25, 0.08]),
    )


def monitor_guard(**kwargs):
    return make_detector_guard(
        detection_thresholds(),
        strategy=kwargs.pop("strategy", MitigationStrategy.MONITOR),
        fusion=kwargs.pop("fusion", FusionRule.ANY),
        **kwargs,
    )


def debounced_guard(parameter_error, fusion, decision_window):
    """A guard with an M-of-N decision window (not exposed by the factory)."""
    model = RavenDynamicModel(integrator="euler", parameter_error=parameter_error)
    detector = AnomalyDetector(
        thresholds=detection_thresholds(),
        fusion=fusion,
        decision_window=decision_window,
    )
    return DetectorGuard(NextStateEstimator(model), detector)


class TestFaultFreeEquivalence:
    def test_mixed_guarded_and_unguarded_lanes(self):
        """Heterogeneous fault-free lanes: seeds, trajectories, guard kinds."""
        recipes = [
            LaneRecipe(
                "plain-circle",
                lambda: LaneSpec(
                    RigConfig(seed=1, duration_s=0.7, trajectory_name="circle")
                ),
            ),
            LaneRecipe(
                "plain-suturing",
                lambda: LaneSpec(
                    RigConfig(seed=2, duration_s=0.7, trajectory_name="suturing")
                ),
            ),
            LaneRecipe(
                "monitored-figure8",
                lambda: LaneSpec(
                    RigConfig(seed=3, duration_s=0.7, trajectory_name="figure8"),
                    guard=monitor_guard(),
                ),
            ),
            LaneRecipe(
                "supervised-circle",
                lambda: LaneSpec(
                    RigConfig(seed=4, duration_s=0.7, trajectory_name="circle"),
                    guard=GuardSupervisor(monitor_guard(), SupervisorConfig()),
                ),
            ),
        ]
        report = assert_equivalent(recipes)
        # Pedal Down was reached, so the guarded lanes actually evaluated
        # packets — the equivalence is not vacuous.
        assert report.batched[2].guard_stats["packets_evaluated"] > 0
        assert report.batched[3].guard_stats["packets_evaluated"] > 0

    def test_single_lane_batch_is_scalar(self):
        """N=1 batched run is the scalar run, bit for bit."""
        recipes = [
            LaneRecipe(
                "solo",
                lambda: LaneSpec(
                    RigConfig(seed=7, duration_s=0.6, trajectory_name="circle"),
                    guard=monitor_guard(),
                ),
            )
        ]
        assert_equivalent(recipes)

    def test_heterogeneous_guard_configurations(self):
        """Lanes differ in model error, fusion rule and decision window."""
        recipes = [
            LaneRecipe(
                "loose-model",
                lambda: LaneSpec(
                    RigConfig(seed=11, duration_s=0.7, trajectory_name="circle"),
                    guard=make_detector_guard(
                        detection_thresholds(),
                        parameter_error=1.10,
                        fusion=FusionRule.ANY,
                    ),
                ),
            ),
            LaneRecipe(
                "majority-debounced",
                lambda: LaneSpec(
                    RigConfig(seed=12, duration_s=0.7, trajectory_name="figure8"),
                    guard=debounced_guard(1.01, FusionRule.MAJORITY, (2, 4)),
                ),
            ),
            LaneRecipe(
                "late-pedal",
                lambda: LaneSpec(
                    RigConfig(
                        seed=13,
                        duration_s=0.7,
                        trajectory_name="circle",
                        pedal_press_s=0.55,
                    ),
                    guard=monitor_guard(),
                ),
            ),
        ]
        assert_equivalent(recipes)


class TestAttackEquivalence:
    @pytest.mark.slow
    def test_scenario_b_all_mitigation_strategies(self):
        """DAC-injection attack under every mitigation posture at once.

        The unguarded lane rides out the attack until the robot's own DAC
        limit trips; MONITOR alarms without blocking; BLOCK zeroes the
        corrupted packets; BLOCK_AND_ESTOP escalates to a PLC E-STOP.
        All four must match the scalar runs exactly.
        """

        def lane(i, strategy):
            guard = None if strategy is None else monitor_guard(strategy=strategy)
            return scenario_b_lane(
                seed=10 + i,
                error_dac=12_000,
                period_ms=300,
                duration_s=1.0,
                guard=guard,
                trajectory_name="circle",
            )

        recipes = [
            LaneRecipe("unguarded", lambda: lane(0, None)),
            LaneRecipe("monitor", lambda: lane(1, MitigationStrategy.MONITOR)),
            LaneRecipe("block", lambda: lane(2, MitigationStrategy.BLOCK)),
            LaneRecipe(
                "block-estop", lambda: lane(3, MitigationStrategy.BLOCK_AND_ESTOP)
            ),
        ]
        report = assert_equivalent(recipes)

        monitor, block, estop = report.batched[1:]
        assert monitor.guard_stats["alerts"] > 0
        assert monitor.guard_stats["blocked"] == 0
        assert block.guard_stats["blocked"] > 0
        assert any(
            "detector alert" in reason for _, reason in estop.trace.estop_events
        ), estop.trace.estop_events
        # Attack bookkeeping (set by the trigger/record finalization) is
        # part of the fingerprint and must round-trip through the batch.
        assert monitor.trace.attack_first_cycle is not None

    @pytest.mark.slow
    def test_scenario_a_operator_input_attack(self):
        """Injected operator-input error: alarms and blocks match scalar."""

        def lane(i, strategy):
            return scenario_a_lane(
                seed=30 + i,
                error_mm=2.0,
                period_ms=300,
                duration_s=1.0,
                guard=monitor_guard(strategy=strategy),
                trajectory_name="suturing",
            )

        recipes = [
            LaneRecipe("monitor", lambda: lane(0, MitigationStrategy.MONITOR)),
            LaneRecipe("block", lambda: lane(1, MitigationStrategy.BLOCK)),
        ]
        report = assert_equivalent(recipes)
        assert report.batched[0].guard_stats["alerts"] > 0
        assert report.batched[1].guard_stats["blocked"] > 0


class TestPhysicalFaultEquivalence:
    @pytest.mark.slow
    def test_supervisor_degraded_modes_under_attack(self):
        """Physical faults + supervisor + attack, one fault class per lane.

        encoder_dropout and encoder_glitch drive the supervisor into
        model coasting; model_drift exercises the per-lane parameter
        refresh inside the batched model; packet_loss stresses the
        packet-stream bookkeeping.  Degraded-mode counters (coasting,
        implausible measurements, health transitions) must match scalar.
        """
        faults = ["encoder_dropout", "encoder_glitch", "packet_loss", "model_drift"]

        def lane(i):
            supervisor = GuardSupervisor(monitor_guard(), SupervisorConfig())
            plan = PhysFaultPlan.single(
                faults[i], intensity=0.5, seed=100 + i, start_s=0.6
            )
            return scenario_b_lane(
                seed=20 + i,
                error_dac=12_000,
                period_ms=300,
                duration_s=1.0,
                guard=supervisor,
                trajectory_name="figure8",
                phys_faults=plan.to_dict(),
            )

        recipes = [
            LaneRecipe(faults[i], lambda i=i: lane(i)) for i in range(len(faults))
        ]
        report = assert_equivalent(recipes)
        # The encoder faults actually pushed their lanes into coasting.
        assert report.batched[0].guard_stats["coasted_cycles"] > 0
        assert report.batched[1].guard_stats["coasted_cycles"] > 0
        # The healthy-stream lanes never coasted.
        assert report.batched[2].guard_stats["coasted_cycles"] == 0


class TestPerLaneAlarmBookkeeping:
    def test_same_cycle_alarms_counted_per_lane(self):
        """Two lanes alarming in the same cycle are counted separately.

        Both lanes run the same aggressive attack with near-zero
        thresholds, so their alarms overlap cycle for cycle; each lane's
        GuardStats must record its own alarms (not a shared counter), and
        both must match the scalar runs.
        """
        tight = SafetyThresholds(
            motor_velocity=np.array([1e-6, 1e-6, 1e-6]),
            motor_acceleration=np.array([1e-6, 1e-6, 1e-6]),
            joint_velocity=np.array([1e-9, 1e-9, 1e-9]),
        )

        def lane(i):
            guard = make_detector_guard(
                tight,
                strategy=MitigationStrategy.MONITOR,
                fusion=FusionRule.ANY,
            )
            return LaneSpec(
                RigConfig(seed=40 + i, duration_s=0.6, trajectory_name="circle"),
                guard=guard,
            )

        recipes = [LaneRecipe(f"lane{i}", lambda i=i: lane(i)) for i in range(2)]
        report = assert_equivalent(recipes)
        a, b = report.batched
        assert a.guard_stats["alerts"] > 0
        assert b.guard_stats["alerts"] > 0
        overlap = set(a.trace.detector_alert_cycles) & set(
            b.trace.detector_alert_cycles
        )
        assert overlap, "expected both lanes to alarm in the same cycles"
        # Per-lane counters: each lane's total equals its own event log.
        assert a.guard_stats["alerts"] >= len(overlap)
        assert b.guard_stats["alerts"] >= len(overlap)

    def test_batched_debouncer_is_per_lane(self):
        """BatchedAnomalyDetector keeps one M-of-N window per lane."""
        thresholds = SafetyThresholds(
            motor_velocity=np.array([1.0, 1.0, 1.0]),
            motor_acceleration=np.array([10.0, 10.0, 10.0]),
            joint_velocity=np.array([1.0, 1.0, 1.0]),
        )

        def estimate(hot: bool) -> StateEstimate:
            scale = 50.0 if hot else 0.0
            return StateEstimate(
                motor_velocity=np.full(3, scale),
                motor_acceleration=np.full(3, 10 * scale),
                joint_velocity=np.full(3, scale),
                jpos_next=np.zeros(3),
                jvel_next=np.zeros(3),
                elapsed_s=0.0,
            )

        scalars = [
            AnomalyDetector(thresholds, FusionRule.ANY, decision_window=(2, 3))
            for _ in range(2)
        ]
        batched = BatchedAnomalyDetector.from_detectors(
            [
                AnomalyDetector(thresholds, FusionRule.ANY, decision_window=(2, 3))
                for _ in range(2)
            ]
        )
        # Lane 0 alarms every cycle; lane 1 only on the last — their
        # debounce windows must not bleed into each other.
        schedule = [(True, False), (True, False), (True, True)]
        for hot0, hot1 in schedule:
            r0 = scalars[0].evaluate(estimate(hot0))
            r1 = scalars[1].evaluate(estimate(hot1))
            scale = np.where(np.array([hot0, hot1]), 50.0, 0.0)
            be = BatchedStateEstimate(
                motor_velocity=np.tile(scale[:, None], 3),
                motor_acceleration=np.tile(10 * scale[:, None], 3),
                joint_velocity=np.tile(scale[:, None], 3),
                jpos_next=np.zeros((2, 3)),
                jvel_next=np.zeros((2, 3)),
                elapsed_s=0.0,
            )
            br = batched.evaluate(be, np.ones(2, dtype=bool))
            assert br.alert[0] == r0.alert
            assert br.alert[1] == r1.alert
        # Lane 0 passed 2-of-3 and alarmed; lane 1's single raw alarm
        # was debounced away.  Counters are per lane.
        assert batched.alerts[0] == scalars[0].alerts > 0
        assert batched.alerts[1] == scalars[1].alerts == 0
        assert list(batched.evaluations) == [3, 3]


class TestLaneRemoval:
    """Ejecting a lane must not shift the surviving lanes' state.

    The fleet supervisor quarantines faulted sessions by removing their
    lane from the batched pack mid-run; the regression pinned here is the
    bookkeeping one: after ``remove_lanes``, every surviving lane's
    GuardStats-feeding counters, debouncer ring slots and estimator state
    bytes must be exactly what a never-batched-with-the-ejected-lane run
    produces.
    """

    @staticmethod
    def hot_estimate(scales: np.ndarray) -> BatchedStateEstimate:
        """Per-lane estimates: scale 0 is quiet, large scales alarm."""
        scales = np.asarray(scales, dtype=float)
        return BatchedStateEstimate(
            motor_velocity=np.tile(scales[:, None], 3),
            motor_acceleration=np.tile(10 * scales[:, None], 3),
            joint_velocity=np.tile(scales[:, None], 3),
            jpos_next=np.zeros((len(scales), 3)),
            jvel_next=np.zeros((len(scales), 3)),
            elapsed_s=0.0,
        )

    def test_detector_removal_preserves_survivor_state(self):
        thresholds = SafetyThresholds(
            motor_velocity=np.array([1.0, 1.0, 1.0]),
            motor_acceleration=np.array([10.0, 10.0, 10.0]),
            joint_velocity=np.array([1.0, 1.0, 1.0]),
        )

        def build(num):
            return BatchedAnomalyDetector.from_detectors(
                [
                    AnomalyDetector(thresholds, FusionRule.ANY, decision_window=(2, 3))
                    for _ in range(num)
                ]
            )

        # Three lanes with distinct alarm phases, so any slot shift on
        # removal would change a survivor's 2-of-3 decision.
        full = build(3)
        schedule = [(50.0, 0.0, 50.0), (0.0, 50.0, 50.0), (50.0, 0.0, 0.0)]
        for scales in schedule:
            full.evaluate(self.hot_estimate(np.array(scales)))

        survivors = full.remove_lanes([1])
        assert survivors == [0, 2]
        assert full.num_lanes == 2

        # Control: lanes 0 and 2 alone, fed their own columns only.
        control = build(2)
        for scales in schedule:
            control.evaluate(self.hot_estimate(np.array([scales[0], scales[2]])))

        assert list(full.evaluations) == list(control.evaluations)
        assert list(full.alerts) == list(control.alerts)
        for lane in range(2):
            assert full.debouncer.lane_window(lane) == (
                control.debouncer.lane_window(lane)
            )
        # Future decisions stay aligned too (ring positions survived).
        tail = [(0.0, 50.0), (50.0, 50.0)]
        for scales in tail:
            r_full = full.evaluate(self.hot_estimate(np.array(scales)))
            r_ctrl = control.evaluate(self.hot_estimate(np.array(scales)))
            assert list(r_full.alert) == list(r_ctrl.alert)
        assert list(full.alerts) == list(control.alerts)

    def test_estimator_removal_preserves_survivor_bytes(self):
        def build(errors):
            return BatchedNextStateEstimator(
                [
                    RavenDynamicModel(integrator="euler", parameter_error=e)
                    for e in errors
                ]
            )

        full = build([1.0, 1.03, 1.05])
        mpos = np.array(
            [[0.001, 0.002, 0.003], [0.002, 0.001, 0.004], [0.003, 0.004, 0.001]]
        )
        dac = np.array([[150.0, -30.0, 12.0]] * 3)
        full.sync(mpos)
        full.sync(mpos + 0.0005)
        full.estimate(dac)
        full.coast(np.array([False, False, True]))  # stagger lane 2

        survivors = full.remove_lanes([0])
        assert survivors == [1, 2]

        control = build([1.03, 1.05])
        control.sync(mpos[1:])
        control.sync(mpos[1:] + 0.0005)
        control.estimate(dac[1:])
        control.coast(np.array([False, True]))

        assert full._jpos.tobytes() == control._jpos.tobytes()
        assert full._jvel.tobytes() == control._jvel.tobytes()
        assert list(full.coast_streak) == list(control.coast_streak)
        for lane in range(2):
            assert full.lane_state(lane) == control.lane_state(lane)
        # And the survivors keep producing identical estimates.
        nxt = np.array([[80.0, 40.0, -5.0]] * 2)
        mask = np.array([True, False])  # lane 1 kept coasting
        a = full.estimate(nxt, mask)
        b = control.estimate(nxt, mask)
        assert a.motor_velocity.tobytes() == b.motor_velocity.tobytes()
        assert a.jpos_next.tobytes() == b.jpos_next.tobytes()

    def test_removing_every_lane_is_rejected(self):
        thresholds = detection_thresholds()
        detector = BatchedAnomalyDetector([thresholds, thresholds])
        with pytest.raises(ValueError):
            detector.remove_lanes([0, 1])
        estimator = BatchedNextStateEstimator(
            [RavenDynamicModel(integrator="euler") for _ in range(2)]
        )
        with pytest.raises(ValueError):
            estimator.remove_lanes([0, 1])


class TestLaneCheckpointParity:
    """Batched ``lane_state``/``load_lane_state``/``reset`` round-trip
    with the scalar ``snapshot``/``restore``/``reset`` surface — the
    parity contract RPR007 pins statically, executed."""

    THRESHOLDS = SafetyThresholds(
        motor_velocity=np.array([1.0, 1.0, 1.0]),
        motor_acceleration=np.array([10.0, 10.0, 10.0]),
        joint_velocity=np.array([1.0, 1.0, 1.0]),
    )

    @staticmethod
    def scalar_estimate(scale: float) -> StateEstimate:
        return StateEstimate(
            motor_velocity=np.full(3, scale),
            motor_acceleration=np.full(3, 10 * scale),
            joint_velocity=np.full(3, scale),
            jpos_next=np.zeros(3),
            jvel_next=np.zeros(3),
            elapsed_s=0.0,
        )

    @staticmethod
    def batched_estimate(scales: np.ndarray) -> BatchedStateEstimate:
        scales = np.asarray(scales, dtype=float)
        return BatchedStateEstimate(
            motor_velocity=np.tile(scales[:, None], 3),
            motor_acceleration=np.tile(10 * scales[:, None], 3),
            joint_velocity=np.tile(scales[:, None], 3),
            jpos_next=np.zeros((len(scales), 3)),
            jvel_next=np.zeros((len(scales), 3)),
            elapsed_s=0.0,
        )

    def build_scalars(self, num: int):
        return [
            AnomalyDetector(self.THRESHOLDS, FusionRule.ANY, decision_window=(2, 3))
            for _ in range(num)
        ]

    def drive(self, scalars, batched, schedule):
        for scales in schedule:
            for lane, scalar in enumerate(scalars):
                scalar.evaluate(self.scalar_estimate(scales[lane]))
            batched.evaluate(self.batched_estimate(np.array(scales)))

    def test_detector_lane_state_matches_scalar_snapshot(self):
        scalars = self.build_scalars(2)
        batched = BatchedAnomalyDetector.from_detectors(self.build_scalars(2))
        self.drive(scalars, batched, [(50.0, 0.0), (0.0, 50.0), (50.0, 50.0)])
        for lane, scalar in enumerate(scalars):
            assert batched.lane_state(lane) == scalar.snapshot()

    def test_detector_lane_round_trip_both_directions(self):
        scalars = self.build_scalars(2)
        batched = BatchedAnomalyDetector.from_detectors(self.build_scalars(2))
        # An asymmetric prefix so each lane's ring holds distinct bytes.
        self.drive(scalars, batched, [(50.0, 0.0), (50.0, 50.0)])

        # batched lane -> fresh scalar detector
        restored_scalar = self.build_scalars(1)[0]
        restored_scalar.restore(batched.lane_state(0))
        # scalar snapshots -> fresh batched pack
        restored_batched = BatchedAnomalyDetector.from_detectors(
            self.build_scalars(2)
        )
        for lane, scalar in enumerate(scalars):
            restored_batched.load_lane_state(lane, scalar.snapshot())

        # All three continue in lockstep after the round-trip.
        tail = [(0.0, 50.0), (50.0, 0.0), (50.0, 50.0)]
        for scales in tail:
            r_scalar0 = scalars[0].evaluate(self.scalar_estimate(scales[0]))
            r_restored = restored_scalar.evaluate(
                self.scalar_estimate(scales[0])
            )
            r_batched = restored_batched.evaluate(
                self.batched_estimate(np.array(scales))
            )
            assert r_restored.alert == r_scalar0.alert
            assert r_batched.alert[0] == r_scalar0.alert
        assert restored_batched.lane_state(0) == scalars[0].snapshot()

    def test_detector_window_mismatch_is_rejected(self):
        batched = BatchedAnomalyDetector.from_detectors(self.build_scalars(2))
        bad = batched.lane_state(0)
        bad["debouncer"]["n"] = 4
        with pytest.raises(ValueError, match="decision-window mismatch"):
            batched.load_lane_state(0, bad)
        windowless = BatchedAnomalyDetector([self.THRESHOLDS, self.THRESHOLDS])
        with pytest.raises(ValueError, match="presence mismatch"):
            windowless.load_lane_state(0, batched.lane_state(0))

    def test_estimator_reset_matches_scalar(self):
        errors = [1.0, 1.03]
        scalars = [
            NextStateEstimator(
                RavenDynamicModel(integrator="euler", parameter_error=e)
            )
            for e in errors
        ]
        batched = BatchedNextStateEstimator(
            [
                RavenDynamicModel(integrator="euler", parameter_error=e)
                for e in errors
            ]
        )
        mpos = np.array([[0.001, 0.002, 0.003], [0.002, 0.001, 0.004]])
        dac = np.array([[150.0, -30.0, 12.0]] * 2)
        for lane, scalar in enumerate(scalars):
            scalar.sync(mpos[lane])
            scalar.sync(mpos[lane] + 0.0005)
            scalar.estimate(dac[lane])
            scalar.reset()
        batched.sync(mpos)
        batched.sync(mpos + 0.0005)
        batched.estimate(dac)
        batched.reset()
        for lane, scalar in enumerate(scalars):
            assert batched.lane_state(lane) == scalar.snapshot()
        # A reset pack behaves like pristine scalar lanes from here on.
        for lane, scalar in enumerate(scalars):
            scalar.sync(mpos[lane])
        batched.sync(mpos)
        for lane, scalar in enumerate(scalars):
            assert batched.lane_state(lane) == scalar.snapshot()


class TestHarness:
    def test_report_formats_mismatches(self):
        """The report names the lane and field of every divergence."""
        outcome_a = LaneOutcome(
            trace=None,
            fingerprint={"jpos_sha256": "aaaa", "cycles": 10},
            guard_stats={"alerts": 3},
        )
        outcome_b = LaneOutcome(
            trace=None,
            fingerprint={"jpos_sha256": "bbbb", "cycles": 10},
            guard_stats={"alerts": 5},
        )
        report = EquivalenceReport(
            names=["laneX"], scalar=[outcome_a], batched=[outcome_b]
        )
        assert not report.equivalent
        with pytest.raises(AssertionError) as excinfo:
            report.assert_equal()
        message = str(excinfo.value)
        assert "laneX" in message
        assert "jpos_sha256" in message
        assert "guard.alerts" in message
        assert "cycles" not in message

"""Tests for repro.dynamics.plant."""

import numpy as np
import pytest

from repro import constants
from repro.dynamics.plant import (
    RavenPlant,
    current_to_dac,
    dac_to_current,
)
from repro.errors import DynamicsError
from repro.kinematics.workspace import Workspace


class TestDacConversion:
    def test_full_scale(self):
        current = dac_to_current([constants.DAC_FULL_SCALE])
        assert current[0] == pytest.approx(constants.DAC_FULL_SCALE_CURRENT_A)

    def test_roundtrip(self, rng):
        dac = rng.uniform(-30000, 30000, 3)
        assert np.allclose(current_to_dac(dac_to_current(dac)), dac)

    def test_sign_preserved(self):
        assert dac_to_current([-1000])[0] < 0


class TestPlantConstruction:
    def test_wrong_motor_count_rejected(self):
        from repro.dynamics.motor import MAXON_RE40

        with pytest.raises(DynamicsError):
            RavenPlant(motors=[MAXON_RE40, MAXON_RE40])

    def test_zero_substeps_rejected(self):
        with pytest.raises(DynamicsError):
            RavenPlant(substeps=0)

    def test_starts_braked_at_initial_pose(self):
        q0 = Workspace().neutral()
        plant = RavenPlant(initial_jpos=q0)
        assert plant.brakes_engaged
        assert np.allclose(plant.jpos, q0)
        assert np.allclose(plant.jvel, 0.0)


class TestBrakes:
    def test_braked_plant_ignores_dac(self):
        plant = RavenPlant()
        q0 = plant.jpos
        for _ in range(50):
            plant.step([20000, 20000, 10000])
        assert np.allclose(plant.jpos, q0)

    def test_released_plant_moves_under_torque(self, released_plant):
        q0 = released_plant.jpos
        for _ in range(50):
            released_plant.step([8000, 0, 0])
        assert abs(released_plant.jpos[0] - q0[0]) > 1e-5

    def test_brake_engage_has_delay(self, released_plant):
        plant = released_plant
        # Build up speed, then request the brakes.
        for _ in range(80):
            plant.step([12000, 0, 0])
        v_before = plant.jvel[0]
        assert v_before > 0
        plant.engage_brakes()
        assert not plant.brakes_engaged
        assert plant.brakes_engaging
        # During the delay the arm coasts (moves without motor power).
        q_at_request = plant.jpos[0]
        plant.step([12000, 0, 0])  # DAC ignored while closing
        assert plant.jpos[0] > q_at_request
        # After the delay elapses the brakes lock and velocity zeroes.
        for _ in range(int(plant.brake_delay_s / constants.CONTROL_PERIOD_S) + 2):
            plant.step([0, 0, 0])
        assert plant.brakes_engaged
        assert np.allclose(plant.jvel, 0.0)

    def test_engage_idempotent_during_countdown(self, released_plant):
        plant = released_plant
        plant.engage_brakes()
        countdown = plant._brake_countdown
        plant.step([0, 0, 0])
        plant.engage_brakes()  # must not restart the countdown
        assert plant._brake_countdown < countdown

    def test_release_cancels_countdown(self, released_plant):
        plant = released_plant
        plant.engage_brakes()
        plant.release_brakes()
        assert not plant.brakes_engaging
        assert not plant.brakes_engaged

    def test_zero_delay_locks_immediately(self):
        plant = RavenPlant()
        plant.release_brakes()
        plant.brake_delay_s = 0.0
        plant.engage_brakes()
        assert plant.brakes_engaged


class TestDynamicsBehaviour:
    def test_gravity_sags_unpowered_arm(self):
        plant = RavenPlant(initial_jpos=Workspace().neutral())
        plant.release_brakes()
        q0 = plant.jpos
        for _ in range(200):
            plant.step([0, 0, 0])
        # Some joint must move under gravity with zero current.
        assert np.linalg.norm(plant.jpos - q0) > 1e-5

    def test_current_tracks_setpoint(self, released_plant):
        plant = released_plant
        for _ in range(10):
            plant.step([10000, 0, 0])
        expected = dac_to_current([10000])[0]
        assert plant.currents[0] == pytest.approx(expected, rel=1e-3)

    def test_current_clamped_at_amp_limit(self, released_plant):
        plant = released_plant
        for _ in range(10):
            plant.step([32767, 0, 0])
        assert plant.currents[0] <= plant.motors[0].max_current + 1e-9

    def test_motor_positions_follow_transmission(self, released_plant):
        plant = released_plant
        plant.step([3000, -2000, 1000])
        assert np.allclose(
            plant.mpos, plant.transmission.motor_positions(plant.jpos)
        )

    def test_time_advances(self, released_plant):
        t0 = released_plant.time
        released_plant.step([0, 0, 0])
        assert released_plant.time == pytest.approx(
            t0 + constants.CONTROL_PERIOD_S
        )

    def test_set_state(self, released_plant):
        q = np.array([0.2, 1.3, 0.12])
        released_plant.set_state(q)
        assert np.allclose(released_plant.jpos, q)
        assert np.allclose(released_plant.jvel, 0.0)

    def test_snapshot_is_copy(self, released_plant):
        snap = released_plant.snapshot()
        snap.jpos[0] = 99.0
        assert released_plant.jpos[0] != 99.0

    def test_integrator_choice_changes_little_at_substeps(self):
        # Euler at 4 substeps should land close to RK4 at 2 substeps.
        kwargs = dict(initial_jpos=Workspace().neutral())
        p_rk4 = RavenPlant(integrator="rk4", substeps=2, **kwargs)
        p_eul = RavenPlant(integrator="euler", substeps=4, **kwargs)
        for p in (p_rk4, p_eul):
            p.release_brakes()
            for _ in range(100):
                p.step([5000, -3000, 2000])
        assert np.allclose(p_rk4.jpos, p_eul.jpos, atol=1e-3)

"""Tests for repro.control.controller via a minimal hand-built stack."""

import numpy as np
import pytest

from repro import constants
from repro.control.controller import INIT_CYCLES, RavenController
from repro.control.state_machine import RobotState
from repro.dynamics.plant import RavenPlant
from repro.hw.encoder import EncoderBank
from repro.hw.motor_controller import MotorController
from repro.hw.plc import Plc
from repro.hw.usb_board import UsbBoard
from repro.kinematics.workspace import Workspace
from repro.sysmodel.process import Process
from repro.teleop.itp import ItpPacket, encode_itp


class DirectSocket:
    """A socket the test can push ITP packets into."""

    def __init__(self):
        self.queue = []

    def push(self, packet: ItpPacket):
        self.queue.append(encode_itp(packet))

    def fd_recvfrom(self, n):
        return self.queue.pop(0) if self.queue else None

    def fd_write(self, data):
        return len(data)

    def fd_read(self, n):
        return b""


@pytest.fixture
def stack():
    plant = RavenPlant(initial_jpos=Workspace().neutral())
    mc = MotorController(plant)
    plc = Plc(plant, mc)
    encoders = EncoderBank()
    board = UsbBoard(mc, plc, encoders)
    process = Process("r2_control")
    usb_fd = process.open_device(board)
    socket = DirectSocket()
    itp_fd = process.open_device(socket)
    controller = RavenController(
        process=process, usb_fd=usb_fd, itp_fd=itp_fd, encoders=encoders
    )
    return controller, socket, plant, plc, board


def run_cycles(controller, plc, board, n, start=0):
    outs = []
    for k in range(start, start + n):
        outs.append(controller.tick(k * constants.CONTROL_PERIOD_S))
        plc.tick()
        board.motor_controller.tick()
    return outs


class TestLifecycle:
    def test_homing_completes_after_init_cycles(self, stack):
        controller, _sock, _plant, plc, board = stack
        controller.press_start(0.0)
        outs = run_cycles(controller, plc, board, INIT_CYCLES + 5)
        assert outs[0].state is RobotState.INIT
        assert outs[-1].state is RobotState.PEDAL_UP

    def test_pedal_engages_after_homing(self, stack):
        controller, sock, _plant, plc, board = stack
        controller.press_start(0.0)
        run_cycles(controller, plc, board, INIT_CYCLES + 5)
        sock.push(ItpPacket(0, True, np.zeros(3)))
        outs = run_cycles(controller, plc, board, 2, start=INIT_CYCLES + 5)
        assert outs[0].state is RobotState.PEDAL_DOWN

    def test_packets_written_every_cycle(self, stack):
        controller, _sock, _plant, plc, board = stack
        controller.press_start(0.0)
        run_cycles(controller, plc, board, 10)
        assert board.packets_received == 10

    def test_dac_zero_outside_pedal_down(self, stack):
        controller, _sock, _plant, plc, board = stack
        controller.press_start(0.0)
        outs = run_cycles(controller, plc, board, 20)
        for out in outs:
            assert np.all(out.dac == 0)


class TestTeleoperation:
    def _engage(self, stack):
        controller, sock, plant, plc, board = stack
        controller.press_start(0.0)
        run_cycles(controller, plc, board, INIT_CYCLES + 5)
        sock.push(ItpPacket(0, True, np.zeros(3)))
        run_cycles(controller, plc, board, 2, start=INIT_CYCLES + 5)
        return INIT_CYCLES + 7

    def test_tracks_increments(self, stack):
        controller, sock, plant, plc, board = stack
        k0 = self._engage(stack)
        start_pos = controller.arm.forward(plant.jpos)
        # Command 1 mm of +x motion, 2 um per packet, one packet per cycle
        # (the controller keeps only the latest packet each cycle).
        for i in range(500):
            sock.push(ItpPacket(i, True, np.array([2e-6, 0, 0])))
            run_cycles(controller, plc, board, 1, start=k0 + i)
        run_cycles(controller, plc, board, 200, start=k0 + 500)
        moved = controller.arm.forward(plant.jpos) - start_pos
        assert moved[0] == pytest.approx(1e-3, abs=3e-4)

    def test_oversized_increment_clamped(self, stack):
        controller, sock, plant, plc, board = stack
        k0 = self._engage(stack)
        pos_before = None
        sock.push(ItpPacket(0, True, np.array([4e-4, 0, 0])))  # legal
        out = run_cycles(controller, plc, board, 1, start=k0)[0]
        pos_before = out.pos_d.copy()
        # An increment far beyond the ITP limit advances pos_d only by the
        # clamped amount.
        sock.push(ItpPacket(1, True, np.array([0.5, 0, 0])))
        out = run_cycles(controller, plc, board, 1, start=k0 + 1)[0]
        delta = out.pos_d - pos_before
        assert delta[0] <= constants.ITP_MAX_INCREMENT_M + 1e-12

    def test_corrupt_itp_packet_counted_and_skipped(self, stack):
        controller, sock, _plant, plc, board = stack
        k0 = self._engage(stack)
        bad = bytearray(encode_itp(ItpPacket(0, True, np.zeros(3))))
        bad[10] ^= 0x55  # corrupt payload -> checksum mismatch
        sock.queue.append(bytes(bad))
        run_cycles(controller, plc, board, 1, start=k0)
        assert controller.bad_packets == 1

    def test_pedal_release_holds_position(self, stack):
        controller, sock, plant, plc, board = stack
        k0 = self._engage(stack)
        sock.push(ItpPacket(0, False, np.zeros(3)))
        outs = run_cycles(controller, plc, board, 3, start=k0)
        assert outs[-1].state is RobotState.PEDAL_UP
        assert np.allclose(outs[-1].pos_d, outs[-1].pos)

    def test_unsafe_dac_trips_safety_and_estops(self, stack):
        controller, sock, plant, plc, board = stack
        k0 = self._engage(stack)
        # Force an enormous PID demand by teleporting the desired pose.
        controller._pos_d = controller._pos_d + np.array([0.05, 0.0, 0.0])
        outs = run_cycles(controller, plc, board, 3, start=k0)
        tripped = [o for o in outs if not o.safety.safe]
        assert tripped
        assert controller.state_machine.state is RobotState.E_STOP
        assert controller.watchdog.tripped

    def test_watchdog_toggles_in_packets(self, stack):
        controller, _sock, _plant, plc, board = stack
        controller.press_start(0.0)
        levels = []
        for k in range(40):
            controller.tick(k * constants.CONTROL_PERIOD_S)
            plc.tick()
            board.motor_controller.tick()
            levels.append(board.last_packet.watchdog)
        assert any(a != b for a, b in zip(levels, levels[1:]))


class TestWristPath:
    """The ori_d path of Figure 2: orientation increments drive the wrist."""

    def _engage(self, stack):
        controller, sock, plant, plc, board = stack
        controller.press_start(0.0)
        run_cycles(controller, plc, board, INIT_CYCLES + 5)
        sock.push(ItpPacket(0, True, np.zeros(3)))
        run_cycles(controller, plc, board, 2, start=INIT_CYCLES + 5)
        return INIT_CYCLES + 7

    def test_identity_increments_keep_wrist_still(self, stack):
        controller, sock, _plant, plc, board = stack
        k0 = self._engage(stack)
        for i in range(20):
            sock.push(ItpPacket(i, True, np.zeros(3)))
            run_cycles(controller, plc, board, 1, start=k0 + i)
        out = run_cycles(controller, plc, board, 1, start=k0 + 20)[0]
        assert np.allclose(out.wrist_joints, 0.0, atol=1e-9)

    def test_orientation_increments_accumulate(self, stack):
        from repro.kinematics.wrist import euler_zyx_to_quat

        controller, sock, _plant, plc, board = stack
        k0 = self._engage(stack)
        dq = euler_zyx_to_quat(0.002, 0.0, 0.0)  # 2 mrad roll per packet
        for i in range(100):
            sock.push(ItpPacket(i, True, np.zeros(3), dquat=dq))
            run_cycles(controller, plc, board, 1, start=k0 + i)
        # Let the wrist servos settle on the final target.
        out = run_cycles(controller, plc, board, 200, start=k0 + 100)[-1]
        # Commanded roll: 100 * 2 mrad = 0.2 rad, tracked by the wrist.
        assert out.wrist_joints[0] == pytest.approx(0.2, abs=0.02)

    def test_degenerate_quaternion_dropped(self, stack):
        controller, sock, _plant, plc, board = stack
        k0 = self._engage(stack)
        sock.push(ItpPacket(0, True, np.zeros(3), dquat=np.zeros(4)))
        out = run_cycles(controller, plc, board, 1, start=k0)[0]
        assert any("orientation" in n for n in out.notes)
        # ori_d stays a unit quaternion.
        assert np.isclose(np.linalg.norm(out.ori_d), 1.0)

"""Exact state-equality tests for the snapshot()/restore() seams.

The fleet session store (repro.fleet.store) persists guard state as JSON
and must resume a killed session *bit-identically*.  These tests pin the
contract at every layer: NextStateEstimator, AlarmDebouncer,
AnomalyDetector, GuardStats, DetectorGuard, and GuardSupervisor — always
through a real ``json.dumps``/``json.loads`` round trip, because that is
what the store does (hex-encoded floats are what make this exact).
"""

import json

import numpy as np
import pytest

from repro.control.state_machine import RobotState
from repro.core.detector import AlarmDebouncer, AnomalyDetector
from repro.core.estimator import NextStateEstimator
from repro.core.mitigation import MitigationStrategy
from repro.core.pipeline import (
    DetectorGuard,
    GuardHealth,
    GuardStats,
    GuardSupervisor,
    SupervisorConfig,
)
from repro.dynamics.plant import RavenPlant
from repro.hw.encoder import EncoderBank
from repro.hw.motor_controller import MotorController
from repro.hw.plc import Plc
from repro.hw.usb_board import UsbBoard
from repro.hw.usb_packet import decode_command_packet, encode_command_packet
from repro.kinematics.workspace import Workspace

pytestmark = pytest.mark.robustness

PD = RobotState.PEDAL_DOWN


def json_round_trip(payload):
    """What the session store does to every snapshot."""
    return json.loads(json.dumps(payload))


def make_board():
    plant = RavenPlant(initial_jpos=Workspace().neutral())
    plant.release_brakes()
    mc = MotorController(plant)
    plc = Plc(plant, mc)
    return UsbBoard(mc, plc, EncoderBank()), plc


def packet(dac=(100, 0, 0)):
    return decode_command_packet(encode_command_packet(PD, True, list(dac)))


def estimator_state(est):
    """Every mutable field, as raw bytes where float-valued."""
    return (
        None if est._jpos is None else est._jpos.tobytes(),
        est._jvel.tobytes(),
        None if est._predicted_jpos is None else est._predicted_jpos.tobytes(),
        None if est._predicted_jvel is None else est._predicted_jvel.tobytes(),
        est.coast_streak,
    )


class TestEstimatorSnapshot:
    def test_round_trip_is_bit_exact(self):
        est = NextStateEstimator()
        est.sync([0.001, 0.002, 0.003])
        est.sync([0.0017, 0.0021, 0.0028])
        est.estimate([150, -30, 12])  # leaves a stored prediction
        restored = NextStateEstimator()
        restored.restore(json_round_trip(est.snapshot()))
        assert estimator_state(restored) == estimator_state(est)
        # The next estimate from each must be byte-identical too.
        a = est.estimate([80, 40, -5])
        b = restored.estimate([80, 40, -5])
        assert a.jpos_next.tobytes() == b.jpos_next.tobytes()
        assert a.motor_velocity.tobytes() == b.motor_velocity.tobytes()
        assert a.motor_acceleration.tobytes() == b.motor_acceleration.tobytes()

    def test_unsynced_round_trip(self):
        est = NextStateEstimator()
        restored = NextStateEstimator()
        restored.sync([1.0, 1.0, 1.0])  # dirty, then restored over
        restored.restore(json_round_trip(est.snapshot()))
        assert not restored.synced
        assert estimator_state(restored) == estimator_state(est)

    def test_coasting_state_survives(self):
        est = NextStateEstimator()
        est.sync([0.001, 0.002, 0.003])
        est.estimate([150, 0, 0])
        est.coast()
        restored = NextStateEstimator()
        restored.restore(json_round_trip(est.snapshot()))
        assert restored.coast_streak == 1
        assert estimator_state(restored) == estimator_state(est)


class TestDebouncerSnapshot:
    def test_round_trip_preserves_window_and_decisions(self):
        deb = AlarmDebouncer(2, 3)
        for raw in (True, False, True):
            deb.update(raw)
        restored = AlarmDebouncer(2, 3)
        restored.restore(json_round_trip(deb.snapshot()))
        assert restored.window == deb.window
        # Same future decisions: 2-of-3 over [F, T, x].
        assert restored.update(True) == deb.update(True)
        assert restored.update(False) == deb.update(False)

    def test_restore_rejects_mismatched_shape(self):
        deb = AlarmDebouncer(2, 3)
        deb.update(True)
        with pytest.raises(ValueError):
            AlarmDebouncer(1, 3).restore(deb.snapshot())
        with pytest.raises(ValueError):
            AlarmDebouncer(2, 4).restore(deb.snapshot())


class TestDetectorSnapshot:
    def test_counters_and_window_round_trip(self, tight_thresholds):
        det = AnomalyDetector(tight_thresholds, decision_window=(2, 3))
        est = NextStateEstimator()
        est.sync([0.0, 0.0, 0.0])
        det.evaluate(est.estimate([20000, 0, 0]))
        det.evaluate(est.estimate([20000, 0, 0]))
        restored = AnomalyDetector(tight_thresholds, decision_window=(2, 3))
        restored.restore(json_round_trip(det.snapshot()))
        assert restored.evaluations == det.evaluations
        assert restored.alerts == det.alerts
        assert restored.debouncer.window == det.debouncer.window

    def test_restore_rejects_window_presence_mismatch(self, tight_thresholds):
        windowed = AnomalyDetector(tight_thresholds, decision_window=(2, 3))
        plain = AnomalyDetector(tight_thresholds)
        with pytest.raises(ValueError):
            plain.restore(windowed.snapshot())
        with pytest.raises(ValueError):
            windowed.restore(plain.snapshot())


class TestGuardStatsSnapshot:
    def test_exact_equality_including_alert_events(self, tight_thresholds):
        board, _plc = make_board()
        guard = DetectorGuard(
            estimator=NextStateEstimator(),
            detector=AnomalyDetector(tight_thresholds),
            strategy=MitigationStrategy.BLOCK,
        )
        guard.attach(board)
        for dac in ([100, 0, 0], [20000, 0, 0], [20000, 0, 0]):
            board.fd_write(encode_command_packet(PD, True, dac))
        guard.stats.record_health(3, GuardHealth.COASTING)
        restored = GuardStats.from_snapshot(json_round_trip(guard.stats.snapshot()))
        # Dataclass equality is deep: AlertEvent -> DetectionResult margins
        # must come back float-for-float identical.
        assert restored == guard.stats
        assert restored.alert_events[0].result.margins == (
            guard.stats.alert_events[0].result.margins
        )


class TestSupervisorSnapshot:
    CONFIG = SupervisorConfig(max_coast_cycles=4, estop_on_stale=False)

    def make_supervised(self, thresholds):
        board, plc = make_board()
        supervisor = GuardSupervisor(
            DetectorGuard(
                estimator=NextStateEstimator(),
                detector=AnomalyDetector(thresholds, decision_window=(2, 3)),
                strategy=MitigationStrategy.BLOCK,
            ),
            self.CONFIG,
        )
        supervisor.attach(board)
        return supervisor

    @staticmethod
    def drive(supervisor, stream):
        for cycle, mpos in stream:
            supervisor.tick_cycle(cycle)
            supervisor.process(packet(), mpos)

    def test_mid_run_round_trip_then_identical_futures(self, loose_thresholds):
        """Snapshot mid-run (coasting, with a live prediction), restore into
        a fresh supervisor, feed both the same tail: every subsequent
        snapshot must be byte-identical."""
        prefix = [
            (1, np.array([0.001, 0.002, 0.003])),
            (2, np.array([0.0012, 0.0021, 0.0031])),
            (3, np.array([9.0, 0.0, 0.0])),  # implausible jump -> coast
            (4, None),  # missing measurement -> coast
        ]
        tail = [
            (5, np.array([0.0013, 0.0022, 0.0032])),  # recovers to NOMINAL
            (6, np.array([np.nan, 0.0, 0.0])),  # rejected, coasts again
            (7, np.array([0.0014, 0.0022, 0.0033])),
        ]
        original = self.make_supervised(loose_thresholds)
        self.drive(original, prefix)
        assert original.health is GuardHealth.COASTING
        assert original.stats.implausible_measurements == 1
        assert original.stats.coasted_cycles == 2

        checkpoint = json_round_trip(original.snapshot())
        resumed = self.make_supervised(loose_thresholds)
        resumed.restore(checkpoint)
        assert json_round_trip(resumed.snapshot()) == checkpoint

        self.drive(original, tail)
        self.drive(resumed, tail)
        assert json.dumps(resumed.snapshot(), sort_keys=True) == json.dumps(
            original.snapshot(), sort_keys=True
        )
        assert resumed.health is original.health

    def test_restore_rejects_version_mismatch(self, loose_thresholds):
        supervisor = self.make_supervised(loose_thresholds)
        snap = supervisor.snapshot()
        snap["version"] = supervisor.SNAPSHOT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            supervisor.restore(snap)

    def test_restore_rejects_config_mismatch(self, loose_thresholds):
        supervisor = self.make_supervised(loose_thresholds)
        snap = supervisor.snapshot()
        other = GuardSupervisor(
            DetectorGuard(
                estimator=NextStateEstimator(),
                detector=AnomalyDetector(
                    loose_thresholds, decision_window=(2, 3)
                ),
            ),
            SupervisorConfig(max_coast_cycles=99),
        )
        with pytest.raises(ValueError, match="config"):
            other.restore(snap)

    def test_restore_clears_forensic_stash(self, loose_thresholds):
        supervisor = self.make_supervised(loose_thresholds)
        self.drive(supervisor, [(1, np.array([0.001, 0.002, 0.003]))])
        assert supervisor.last_dac is not None
        snap = supervisor.snapshot()
        supervisor.restore(snap)
        assert supervisor.last_dac is None
        assert supervisor.last_evaluation is None
        assert not supervisor.last_blocked

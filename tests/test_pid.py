"""Tests for repro.control.pid."""

import numpy as np
import pytest

from repro.control.pid import DEFAULT_GAINS, MotorPid, PidGains


class TestPidGains:
    def test_negative_gain_rejected(self):
        with pytest.raises(ValueError):
            PidGains(kp=-1.0, ki=0.0, kd=0.0)

    def test_zero_integral_limit_rejected(self):
        with pytest.raises(ValueError):
            PidGains(kp=1.0, ki=1.0, kd=0.0, integral_limit=0.0)


class TestMotorPid:
    def test_zero_error_zero_output_initially(self):
        pid = MotorPid()
        out = pid.update(np.zeros(3), np.zeros(3))
        assert np.allclose(out, 0.0)

    def test_proportional_direction(self):
        pid = MotorPid()
        out = pid.update(np.array([1.0, -1.0, 0.0]), np.zeros(3))
        assert out[0] > 0 and out[1] < 0 and out[2] == pytest.approx(0.0, abs=1e-9)

    def test_integral_accumulates(self):
        pid = MotorPid(gains=[PidGains(kp=0.0, ki=1.0, kd=0.0)] * 3)
        first = pid.update(np.ones(3), np.zeros(3))
        second = pid.update(np.ones(3), np.zeros(3))
        assert np.all(second > first)

    def test_integral_clamped(self):
        pid = MotorPid(
            gains=[PidGains(kp=0.0, ki=1.0, kd=0.0, integral_limit=0.01)] * 3
        )
        for _ in range(1000):
            pid.update(np.ones(3), np.zeros(3))
        assert np.all(pid.integral <= 0.01 + 1e-12)

    def test_derivative_on_measurement_no_setpoint_kick(self):
        pid = MotorPid(gains=[PidGains(kp=0.0, ki=0.0, kd=1.0)] * 3)
        pid.update(np.zeros(3), np.zeros(3))
        # A setpoint step with a constant measurement has no D response.
        out = pid.update(np.ones(3) * 100, np.zeros(3))
        assert np.allclose(out, 0.0)

    def test_derivative_opposes_measurement_motion(self):
        pid = MotorPid(gains=[PidGains(kp=0.0, ki=0.0, kd=1.0)] * 3)
        pid.update(np.zeros(3), np.zeros(3))
        out = pid.update(np.zeros(3), np.array([0.1, 0.0, 0.0]))
        assert out[0] < 0

    def test_output_saturates_at_amplifier_limit(self):
        from repro import constants

        pid = MotorPid()
        out = pid.update(np.array([100.0, 0, 0]), np.zeros(3))
        assert out[0] == pytest.approx(constants.DAC_FULL_SCALE_CURRENT_A)

    def test_custom_output_limit(self):
        pid = MotorPid(output_limit_a=[0.5, 0.5, 0.5])
        out = pid.update(np.ones(3) * 100, np.zeros(3))
        assert np.allclose(out, 0.5)

    def test_reset_clears_state(self):
        pid = MotorPid()
        pid.update(np.ones(3), np.zeros(3))
        pid.reset()
        assert np.allclose(pid.integral, 0.0)
        # No derivative memory after reset.
        out = pid.update(np.zeros(3), np.zeros(3))
        assert np.allclose(out, 0.0)

    def test_default_gains_are_three_axes(self):
        assert len(DEFAULT_GAINS) == 3

    def test_closed_loop_converges_on_plant(self, released_plant):
        """PID around the real plant reaches a nearby motor setpoint."""
        from repro import constants
        from repro.dynamics.plant import current_to_dac

        plant = released_plant
        pid = MotorPid()
        target = plant.mpos + np.array([0.5, 0.5, 0.5])
        for _ in range(2500):
            cmd = pid.update(target, plant.mpos)
            plant.step(current_to_dac(cmd))
        assert np.allclose(plant.mpos, target, atol=0.05)

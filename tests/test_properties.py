"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.attacks.malware import PedalDownTrigger
from repro.control.state_machine import RobotState
from repro.core.metrics import ConfusionMatrix
from repro.dynamics.transmission import Transmission
from repro.hw.usb_packet import (
    decode_command_packet,
    decode_feedback_packet,
    encode_command_packet,
    encode_feedback_packet,
)
from repro.kinematics.frames import matrix_to_quat, quat_normalize, quat_to_matrix
from repro.kinematics.spherical_arm import SphericalArm
from repro.kinematics.workspace import Workspace
from repro.teleop.itp import ItpPacket, decode_itp, encode_itp

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

joint_vectors = st.tuples(
    st.floats(-1.1, 1.1),
    st.floats(0.4, 2.7),
    st.floats(0.06, 0.29),
).map(np.array)

dac_channels = st.lists(
    st.integers(-32768, 32767), min_size=0, max_size=8
)

encoder_channels = st.lists(
    st.integers(-(1 << 23), (1 << 23) - 1), min_size=0, max_size=8
)

states = st.sampled_from(list(RobotState))

unit_quats = st.tuples(
    st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1)
).filter(lambda q: sum(x * x for x in q) > 1e-2).map(
    lambda q: quat_normalize(np.array(q))
)

small_increments = st.tuples(
    st.floats(-4e-4, 4e-4), st.floats(-4e-4, 4e-4), st.floats(-4e-4, 4e-4)
).map(np.array)


# ---------------------------------------------------------------------------
# Kinematics
# ---------------------------------------------------------------------------


class TestKinematicsProperties:
    @given(q=joint_vectors)
    @settings(max_examples=200, deadline=None)
    def test_fk_ik_roundtrip(self, q):
        arm = SphericalArm()
        recovered = arm.inverse(arm.forward(q), reference=q)
        assert np.allclose(recovered, q, atol=1e-7)

    @given(q=joint_vectors)
    @settings(max_examples=100, deadline=None)
    def test_tip_distance_equals_insertion(self, q):
        arm = SphericalArm()
        assert math.isclose(np.linalg.norm(arm.forward(q)), q[2], rel_tol=1e-9)

    @given(q=joint_vectors)
    @settings(max_examples=100, deadline=None)
    def test_workspace_clamp_idempotent(self, q):
        ws = Workspace()
        once = ws.clamp(q * 3.0)
        assert np.allclose(ws.clamp(once), once)
        assert ws.contains(once)

    @given(q=unit_quats)
    @settings(max_examples=150, deadline=None)
    def test_quaternion_matrix_roundtrip(self, q):
        # q and -q encode the same rotation; compare up to global sign
        # (w == 0 quaternions make the sign genuinely ambiguous).
        q2 = matrix_to_quat(quat_to_matrix(q))
        assert np.allclose(q2, q, atol=1e-7) or np.allclose(q2, -q, atol=1e-7)


# ---------------------------------------------------------------------------
# Packet codecs
# ---------------------------------------------------------------------------


class TestPacketProperties:
    @given(state=states, watchdog=st.booleans(), dac=dac_channels)
    @settings(max_examples=200, deadline=None)
    def test_command_roundtrip(self, state, watchdog, dac):
        packet = decode_command_packet(encode_command_packet(state, watchdog, dac))
        assert packet.state is state
        assert packet.watchdog == watchdog
        assert packet.dac_values[: len(dac)] == dac
        assert packet.checksum_ok

    @given(state=states, watchdog=st.booleans(), counts=encoder_channels)
    @settings(max_examples=200, deadline=None)
    def test_feedback_roundtrip(self, state, watchdog, counts):
        packet = decode_feedback_packet(
            encode_feedback_packet(state, watchdog, counts)
        )
        assert packet.state is state
        assert packet.encoder_counts[: len(counts)] == counts
        assert packet.checksum_ok

    @given(
        state=states,
        watchdog=st.booleans(),
        dac=dac_channels,
        index=st.integers(1, constants.USB_PACKET_SIZE - 2),
        flip=st.integers(1, 255),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_payload_tamper_breaks_checksum(
        self, state, watchdog, dac, index, flip
    ):
        data = bytearray(encode_command_packet(state, watchdog, dac))
        data[index] ^= flip
        assert not decode_command_packet(bytes(data)).checksum_ok

    @given(
        seq=st.integers(0, 2**32 - 1),
        pedal=st.booleans(),
        dpos=small_increments,
    )
    @settings(max_examples=200, deadline=None)
    def test_itp_roundtrip(self, seq, pedal, dpos):
        packet = ItpPacket(seq, pedal, dpos)
        decoded = decode_itp(encode_itp(packet))
        assert decoded.sequence == seq
        assert decoded.pedal_down == pedal
        assert np.allclose(decoded.dpos, dpos, atol=1e-9)


# ---------------------------------------------------------------------------
# Transmission
# ---------------------------------------------------------------------------


class TestTransmissionProperties:
    @given(
        jpos=st.tuples(st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5)).map(
            np.array
        ),
        ratios=st.tuples(
            st.floats(1.0, 100.0), st.floats(1.0, 100.0), st.floats(1.0, 100.0)
        ),
        coupling=st.floats(0.0, 0.2),
    )
    @settings(max_examples=150, deadline=None)
    def test_position_roundtrip(self, jpos, ratios, coupling):
        t = Transmission(gear_ratios=ratios, coupling=coupling)
        assert np.allclose(t.joint_positions(t.motor_positions(jpos)), jpos,
                           atol=1e-9)

    @given(
        tau=st.tuples(st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1)).map(
            np.array
        ),
        jdot=st.tuples(st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1)).map(
            np.array
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_power_conservation(self, tau, jdot):
        t = Transmission()
        assert math.isclose(
            float(t.joint_torques(tau) @ jdot),
            float(tau @ t.motor_velocities(jdot)),
            rel_tol=1e-9,
            abs_tol=1e-12,
        )


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetricsProperties:
    @given(
        pairs=st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1,
                       max_size=200)
    )
    @settings(max_examples=200, deadline=None)
    def test_rates_bounded(self, pairs):
        m = ConfusionMatrix.from_pairs(pairs)
        for value in (m.accuracy, m.tpr, m.fpr, m.precision, m.f1):
            assert 0.0 <= value <= 1.0
        assert m.total == len(pairs)

    @given(
        a=st.lists(st.tuples(st.booleans(), st.booleans()), max_size=50),
        b=st.lists(st.tuples(st.booleans(), st.booleans()), max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_addition_equals_concatenation(self, a, b):
        combined = ConfusionMatrix.from_pairs(a) + ConfusionMatrix.from_pairs(b)
        assert combined == ConfusionMatrix.from_pairs(a + b)


# ---------------------------------------------------------------------------
# Attack trigger
# ---------------------------------------------------------------------------


class TestTriggerProperties:
    @given(
        bytes_seen=st.lists(st.integers(0, 255), min_size=1, max_size=300),
        delay=st.integers(0, 10),
        duration=st.integers(1, 50),
    )
    @settings(max_examples=200, deadline=None)
    def test_activations_never_exceed_duration(self, bytes_seen, delay, duration):
        trigger = PedalDownTrigger.for_pedal_down(
            delay_cycles=delay, duration_cycles=duration
        )
        fired = sum(trigger.observe(b) for b in bytes_seen)
        assert fired <= duration
        assert trigger.activations == fired

    @given(bytes_seen=st.lists(st.integers(0, 255), min_size=1, max_size=300))
    @settings(max_examples=200, deadline=None)
    def test_never_fires_outside_trigger_values(self, bytes_seen):
        trigger = PedalDownTrigger.for_pedal_down(single_burst=False)
        for b in bytes_seen:
            fired = trigger.observe(b)
            if fired:
                assert b in trigger.trigger_values

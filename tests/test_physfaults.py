"""Tests for repro.testing.physfaults (physical-layer fault injection)."""

import subprocess
import sys

import numpy as np
import pytest

from repro import constants
from repro.core.dynamic_model import RavenDynamicModel
from repro.errors import ChecksumError
from repro.sim.rig import RigConfig, SurgicalRig
from repro.teleop.itp import ItpPacket, corrupt_itp, decode_itp, encode_itp
from repro.testing.physfaults import (
    PLAN_ENV_VAR,
    PhysFaultInjector,
    PhysFaultPlan,
    PhysFaultSpec,
    coerce_plan,
)

pytestmark = pytest.mark.robustness


def make_injector(*specs, seed=0):
    injector = PhysFaultInjector(PhysFaultPlan(specs=list(specs), seed=seed))
    injector.set_time(0.1)
    return injector


class TestSpecAndPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown physical fault kind"):
            PhysFaultSpec(kind="cosmic_ray")

    def test_intensity_bounds(self):
        with pytest.raises(ValueError, match="intensity"):
            PhysFaultSpec(kind="packet_loss", intensity=1.5)

    def test_window_validation(self):
        with pytest.raises(ValueError, match="stop_s"):
            PhysFaultSpec(kind="packet_loss", start_s=1.0, stop_s=0.5)

    def test_window_activity(self):
        spec = PhysFaultSpec(kind="packet_loss", start_s=0.5, stop_s=1.0)
        assert not spec.active(0.4)
        assert spec.active(0.5)
        assert not spec.active(1.0)

    def test_plan_round_trips_through_dict(self):
        plan = PhysFaultPlan(
            specs=[
                PhysFaultSpec(kind="encoder_glitch", intensity=0.3, axis=1),
                PhysFaultSpec(kind="dac_stuck", value=1234.0, stop_s=1.5),
            ],
            seed=7,
        )
        assert PhysFaultPlan.from_dict(plan.to_dict()) == plan

    def test_plan_save_load(self, tmp_path):
        plan = PhysFaultPlan.single("packet_loss", intensity=0.25, seed=3)
        path = plan.save(tmp_path / "plan.json")
        assert PhysFaultPlan.load(path) == plan

    def test_coerce_plan_accepts_all_forms(self, tmp_path):
        plan = PhysFaultPlan.single("model_drift", seed=9)
        path = plan.save(tmp_path / "plan.json")
        assert coerce_plan(plan) == plan
        assert coerce_plan(plan.to_dict()) == plan
        assert coerce_plan(path) == plan

    def test_subsystem_views(self):
        plan = PhysFaultPlan(
            specs=[
                PhysFaultSpec(kind="encoder_dropout"),
                PhysFaultSpec(kind="dac_saturate"),
                PhysFaultSpec(kind="itp_corrupt"),
                PhysFaultSpec(kind="model_drift"),
            ]
        )
        assert [s.kind for s in plan.encoder_specs] == ["encoder_dropout"]
        assert [s.kind for s in plan.dac_specs] == ["dac_saturate"]
        assert [s.kind for s in plan.network_specs] == ["itp_corrupt"]
        assert [s.kind for s in plan.model_specs] == ["model_drift"]


class TestEncoderFaults:
    def test_dropout_zeroes_counts(self):
        injector = make_injector(PhysFaultSpec(kind="encoder_dropout", intensity=1.0))
        out = injector.encoder_hook(np.array([100, -200, 300], dtype=np.int64))
        assert list(out) == [0, 0, 0]
        assert injector.encoder_faults_fired == 1

    def test_dropout_respects_axis(self):
        injector = make_injector(
            PhysFaultSpec(kind="encoder_dropout", intensity=1.0, axis=1)
        )
        out = injector.encoder_hook(np.array([100, -200, 300], dtype=np.int64))
        assert list(out) == [100, 0, 300]

    def test_glitch_spikes_one_axis(self):
        injector = make_injector(
            PhysFaultSpec(kind="encoder_glitch", intensity=1.0, axis=0, value=500)
        )
        counts = np.array([100, -200, 300], dtype=np.int64)
        out = injector.encoder_hook(counts)
        assert abs(out[0] - 100) == 500
        assert list(out[1:]) == [-200, 300]

    def test_stuck_holds_first_active_value(self):
        injector = make_injector(PhysFaultSpec(kind="encoder_stuck"))
        first = injector.encoder_hook(np.array([10, 20, 30], dtype=np.int64))
        later = injector.encoder_hook(np.array([99, 98, 97], dtype=np.int64))
        assert list(first) == [10, 20, 30]
        assert list(later) == [10, 20, 30]

    def test_inactive_window_passes_through(self):
        injector = make_injector(
            PhysFaultSpec(kind="encoder_dropout", intensity=1.0, start_s=5.0)
        )
        counts = np.array([1, 2, 3], dtype=np.int64)
        assert list(injector.encoder_hook(counts)) == [1, 2, 3]
        assert injector.encoder_faults_fired == 0

    def test_same_cycle_reads_see_identical_corruption(self):
        injector = make_injector(PhysFaultSpec(kind="encoder_glitch", intensity=0.5))
        counts = np.array([100, 200, 300], dtype=np.int64)
        assert list(injector.encoder_hook(counts)) == list(
            injector.encoder_hook(counts)
        )


class TestDacFaults:
    def test_stuck_forces_channel(self):
        injector = make_injector(
            PhysFaultSpec(kind="dac_stuck", axis=0, value=5000.0)
        )
        assert injector.dac_hook([100, 200, 300]) == [5000, 200, 300]
        assert injector.dac_faults_fired == 1

    def test_saturate_clips_symmetrically(self):
        injector = make_injector(
            PhysFaultSpec(kind="dac_saturate", value=1000.0)
        )
        assert injector.dac_hook([5000, -5000, 500]) == [1000, -1000, 500]

    def test_saturate_intensity_scales_default_limit(self):
        injector = make_injector(PhysFaultSpec(kind="dac_saturate", intensity=1.0))
        limit = int(round(0.1 * constants.DAC_FULL_SCALE))
        assert injector.dac_hook([32000, 0, 0]) == [limit, 0, 0]


class TestNetworkFaults:
    def packet_bytes(self):
        return encode_itp(
            ItpPacket(sequence=1, pedal_down=True, dpos=np.zeros(3))
        )

    def test_loss_drops_delivery(self):
        injector = make_injector(PhysFaultSpec(kind="packet_loss", intensity=1.0))
        assert injector.network_deliveries(self.packet_bytes(), 0.1) == []
        assert injector.packets_dropped == 1

    def test_duplicate_adds_trailing_copy(self):
        injector = make_injector(
            PhysFaultSpec(kind="packet_duplicate", intensity=1.0)
        )
        data = self.packet_bytes()
        deliveries = injector.network_deliveries(data, 0.1)
        assert len(deliveries) == 2
        assert deliveries[0][0] == data
        assert deliveries[1][0] == data
        assert deliveries[1][1] > deliveries[0][1]

    def test_jitter_delays_delivery(self):
        injector = make_injector(
            PhysFaultSpec(kind="packet_jitter", intensity=1.0, value=0.05)
        )
        [(payload, delay)] = injector.network_deliveries(self.packet_bytes(), 0.1)
        assert 0.0 < delay <= 0.05

    def test_corruption_breaks_checksum(self):
        injector = make_injector(PhysFaultSpec(kind="itp_corrupt", intensity=1.0))
        [(payload, _)] = injector.network_deliveries(self.packet_bytes(), 0.1)
        with pytest.raises(ChecksumError):
            decode_itp(payload)

    def test_corrupt_itp_helper_flips_one_byte(self):
        data = self.packet_bytes()
        corrupted = corrupt_itp(data, 6)
        assert corrupted != data
        assert len(corrupted) == len(data)
        assert corrupt_itp(corrupted, 6) == data  # XOR is an involution


class TestModelDrift:
    def test_drift_scales_model_parameters(self):
        model = RavenDynamicModel()
        inertias = model.dynamics.params.base_inertias.copy()
        model.apply_parameter_drift(1.4)
        assert np.allclose(model.dynamics.params.base_inertias, 1.4 * inertias)

    def test_drift_is_bounded(self):
        model = RavenDynamicModel()
        inertias = model.dynamics.params.base_inertias.copy()
        model.apply_parameter_drift(100.0)
        assert np.allclose(model.dynamics.params.base_inertias, 2.0 * inertias)


class TestRigIntegration:
    def test_plan_via_config_fires_faults(self):
        plan = PhysFaultPlan.single("encoder_dropout", intensity=0.5, seed=1)
        config = RigConfig(seed=0, duration_s=0.6, phys_faults=plan.to_dict())
        rig = SurgicalRig(config)
        rig.run()
        assert rig.phys_injector is not None
        assert rig.phys_injector.encoder_faults_fired > 0

    def test_plan_via_env_var(self, tmp_path, monkeypatch):
        path = PhysFaultPlan.single("packet_loss", intensity=0.5, seed=2).save(
            tmp_path / "plan.json"
        )
        monkeypatch.setenv(PLAN_ENV_VAR, str(path))
        rig = SurgicalRig(RigConfig(seed=0, duration_s=0.6))
        rig.run()
        assert rig.phys_injector is not None
        assert rig.phys_injector.packets_dropped > 0
        assert rig.channel.dropped >= rig.phys_injector.packets_dropped

    def test_no_plan_means_no_injector(self, monkeypatch):
        monkeypatch.delenv(PLAN_ENV_VAR, raising=False)
        rig = SurgicalRig(RigConfig(seed=0, duration_s=0.6))
        assert rig.phys_injector is None

    def test_identical_plans_give_identical_traces(self):
        plan = PhysFaultPlan.single("encoder_glitch", intensity=0.4, seed=5)
        traces = []
        for _ in range(2):
            config = RigConfig(seed=3, duration_s=0.8, phys_faults=plan.to_dict())
            traces.append(SurgicalRig(config).run())
        assert np.array_equal(traces[0].jpos, traces[1].jpos)
        assert np.array_equal(traces[0].dac, traces[1].dac)

    def test_production_never_imports_physfaults(self, monkeypatch):
        """Without a plan, a full simulator run must not touch the module."""
        monkeypatch.delenv(PLAN_ENV_VAR, raising=False)
        code = (
            "import sys\n"
            "from repro.sim.runner import run_fault_free\n"
            "run_fault_free(seed=0, duration_s=0.3)\n"
            "assert 'repro.testing.physfaults' not in sys.modules\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True, timeout=300)

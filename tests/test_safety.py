"""Tests for repro.control.safety."""

import numpy as np
import pytest

from repro import constants
from repro.control.safety import SafetyChecker, WatchdogGenerator


class TestSafetyChecker:
    def test_in_range_dac_passes(self, workspace):
        checker = SafetyChecker(workspace=workspace)
        assert checker.check_dac([1000, -2000, 0]).safe

    def test_over_limit_dac_fails_with_reason(self, workspace):
        checker = SafetyChecker(workspace=workspace)
        decision = checker.check_dac([0, constants.DAC_SAFETY_LIMIT + 1, 0])
        assert not decision.safe
        assert "channel 1" in decision.reasons[0]

    def test_limit_is_inclusive(self, workspace):
        checker = SafetyChecker(workspace=workspace)
        assert checker.check_dac([constants.DAC_SAFETY_LIMIT, 0, 0]).safe

    def test_negative_over_limit_fails(self, workspace):
        checker = SafetyChecker(workspace=workspace)
        assert not checker.check_dac([-(constants.DAC_SAFETY_LIMIT + 1), 0, 0]).safe

    def test_joint_targets_inside_pass(self, workspace):
        checker = SafetyChecker(workspace=workspace)
        assert checker.check_joint_targets(workspace.neutral()).safe

    def test_joint_targets_outside_fail(self, workspace):
        checker = SafetyChecker(workspace=workspace)
        decision = checker.check_joint_targets(workspace.upper + 0.5)
        assert not decision.safe

    def test_combined_check_collects_all_reasons(self, workspace):
        checker = SafetyChecker(workspace=workspace)
        decision = checker.check([99999, 0, 0], workspace.upper + 1.0)
        assert not decision.safe
        assert len(decision.reasons) == 2

    def test_decision_truthiness(self, workspace):
        checker = SafetyChecker(workspace=workspace)
        assert bool(checker.check([0, 0, 0], workspace.neutral()))

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            SafetyChecker(dac_limit=0)


class TestWatchdogGenerator:
    def test_toggles_at_half_period(self):
        wd = WatchdogGenerator(half_period_cycles=4)
        levels = [wd.tick() for _ in range(16)]
        # Level changes every 4 cycles (on ticks 4, 8, 12, ...).
        assert levels[0:3] == [levels[0]] * 3
        assert levels[2] != levels[3]
        assert levels[6] != levels[7]
        assert levels[3:7] == [levels[3]] * 4

    def test_square_wave_duty_cycle(self):
        wd = WatchdogGenerator(half_period_cycles=8)
        levels = np.array([wd.tick() for _ in range(160)])
        assert abs(levels.mean() - 0.5) < 0.1

    def test_trip_freezes_level(self):
        wd = WatchdogGenerator(half_period_cycles=2)
        for _ in range(3):
            wd.tick()
        level = wd.level
        wd.trip()
        assert wd.tripped
        assert all(wd.tick() == level for _ in range(20))

    def test_reset_rearms(self):
        wd = WatchdogGenerator(half_period_cycles=1)
        wd.trip()
        wd.reset()
        assert not wd.tripped
        first = wd.tick()
        second = wd.tick()
        assert first != second  # toggling again

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            WatchdogGenerator(half_period_cycles=0)

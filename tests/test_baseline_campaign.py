"""Tests for repro.core.baseline and repro.attacks.campaign plumbing."""

import pytest

from repro.attacks.campaign import (
    CampaignCell,
    CampaignResult,
    RunOutcome,
    table4_rows,
)
from repro.core.baseline import RavenBaselineDetector
from repro.sim.trace import RunTrace


def outcome(cell, label, model, raven, seed=0):
    return RunOutcome(
        cell=cell,
        seed=seed,
        label=label,
        raven_detected=raven,
        model_detected=model,
        deviation_mm=2.0 if label else 0.1,
        attack_fired=cell is not None,
    )


class TestRavenBaselineDetector:
    def test_dac_trip_counts_as_detection(self):
        trace = RunTrace()
        trace.safety_trip_cycles.append(100)
        assert RavenBaselineDetector().detected(trace)

    def test_watchdog_estop_counts(self):
        trace = RunTrace()
        trace.estop_events.append((0.5, "PLC: watchdog signal lost"))
        assert RavenBaselineDetector().detected(trace)

    def test_ik_failure_counts(self):
        trace = RunTrace()
        trace.estop_events.append((0.5, "IK failure"))
        assert RavenBaselineDetector().detected(trace)

    def test_detector_estop_does_not_count(self):
        trace = RunTrace()
        trace.estop_events.append((0.5, "dynamic-model detector alert"))
        assert not RavenBaselineDetector().detected(trace)

    def test_clean_trace_not_detected(self):
        assert not RavenBaselineDetector().detected(RunTrace())

    def test_first_detection_cycle(self):
        trace = RunTrace()
        trace.safety_trip_cycles.extend([42, 50])
        assert RavenBaselineDetector().first_detection_cycle(trace) == 42
        assert RavenBaselineDetector().first_detection_cycle(RunTrace()) == -1


class TestCampaignCell:
    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError):
            CampaignCell(scenario="C", error_value=1.0, period_ms=8)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            CampaignCell(scenario="A", error_value=1.0, period_ms=0)


class TestCampaignResult:
    def make_result(self):
        cell_hit = CampaignCell("B", 20000, 64)
        cell_miss = CampaignCell("B", 2000, 8)
        result = CampaignResult(scenario="B")
        result.outcomes = [
            outcome(cell_hit, label=True, model=True, raven=True),
            outcome(cell_hit, label=True, model=True, raven=False),
            outcome(cell_miss, label=False, model=True, raven=False),
            outcome(cell_miss, label=False, model=False, raven=False),
            outcome(None, label=False, model=False, raven=False),
        ]
        return result, cell_hit, cell_miss

    def test_confusion_model(self):
        result, *_ = self.make_result()
        m = result.confusion("model")
        assert (m.tp, m.fn, m.fp, m.tn) == (2, 0, 1, 2)

    def test_confusion_raven(self):
        result, *_ = self.make_result()
        m = result.confusion("raven")
        assert (m.tp, m.fn, m.fp, m.tn) == (1, 1, 0, 3)

    def test_confusion_invalid_detector(self):
        result, *_ = self.make_result()
        with pytest.raises(ValueError):
            result.confusion("snort")

    def test_cell_probabilities_exclude_fault_free(self):
        result, cell_hit, cell_miss = self.make_result()
        table = result.cell_probabilities()
        assert set(table) == {cell_hit, cell_miss}
        assert table[cell_hit]["p_impact"] == 1.0
        assert table[cell_hit]["p_raven"] == 0.5
        assert table[cell_miss]["p_model"] == 0.5

    def test_table4_rows_layout(self):
        result, *_ = self.make_result()
        rows = table4_rows([result])
        assert [(s, t) for s, t, _m in rows] == [
            ("B", "Dynamic Model"),
            ("B", "RAVEN"),
        ]

    def test_fault_free_outcomes_flagged(self):
        result, *_ = self.make_result()
        assert result.outcomes[-1].is_fault_free
        assert not result.outcomes[0].is_fault_free


class TestParallelCampaign:
    @pytest.mark.campaign
    def test_parallel_matches_serial(self, loose_thresholds):
        """workers>1 produces the same deterministic outcomes as serial."""
        from repro.attacks.campaign import CampaignRunner

        kwargs = dict(
            scenario="B",
            error_values=[26000],
            periods_ms=[16],
            repetitions=2,
            fault_free_runs=2,
        )
        serial = CampaignRunner(loose_thresholds, duration_s=0.9).run_campaign(
            **kwargs, workers=1
        )
        parallel = CampaignRunner(loose_thresholds, duration_s=0.9).run_campaign(
            **kwargs, workers=2
        )

        def key(o):
            return (
                o.cell is None,
                0 if o.cell is None else o.cell.error_value,
                0 if o.cell is None else o.cell.period_ms,
                o.seed,
            )

        a = sorted(serial.outcomes, key=key)
        b = sorted(parallel.outcomes, key=key)
        assert len(a) == len(b)
        for sa, sb in zip(a, b):
            assert sa.label == sb.label
            assert sa.model_detected == sb.model_detected
            assert sa.raven_detected == sb.raven_detected
            assert sa.deviation_mm == pytest.approx(sb.deviation_mm, abs=1e-9)

"""Tests for repro.kinematics.workspace."""

import numpy as np
import pytest

from repro import constants
from repro.errors import WorkspaceError
from repro.kinematics.workspace import Workspace


class TestWorkspace:
    def test_neutral_is_inside(self, workspace):
        assert workspace.contains(workspace.neutral())

    def test_neutral_uses_configured_depth(self, workspace):
        assert workspace.neutral()[2] == constants.JOINT3_NEUTRAL_M

    def test_contains_boundaries(self, workspace):
        assert workspace.contains(workspace.lower)
        assert workspace.contains(workspace.upper)

    def test_contains_with_margin_excludes_boundary(self, workspace):
        assert not workspace.contains(workspace.lower, margin=0.01)

    def test_outside_detected(self, workspace):
        q = workspace.upper + np.array([0.1, 0.0, 0.0])
        assert not workspace.contains(q)

    def test_clamp_projects_onto_box(self, workspace):
        q = workspace.upper + np.array([0.5, 1.0, 0.2])
        clamped = workspace.clamp(q)
        assert np.allclose(clamped, workspace.upper)
        assert workspace.contains(clamped)

    def test_clamp_identity_inside(self, workspace):
        q = workspace.neutral()
        assert np.allclose(workspace.clamp(q), q)

    def test_require_raises_outside(self, workspace):
        with pytest.raises(WorkspaceError):
            workspace.require(workspace.upper + 1.0)

    def test_require_passes_inside(self, workspace):
        workspace.require(workspace.neutral())

    def test_violation_zero_inside(self, workspace):
        assert np.all(workspace.violation(workspace.neutral()) == 0.0)

    def test_violation_measures_distance(self, workspace):
        q = workspace.upper.copy()
        q[1] += 0.25
        v = workspace.violation(q)
        assert np.isclose(v[1], 0.25)
        assert v[0] == 0.0 and v[2] == 0.0

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            Workspace(joint1_limits=(1.0, -1.0))

    def test_custom_limits_respected(self):
        ws = Workspace(joint3_limits=(0.01, 0.02))
        assert not ws.contains([0.0, 1.5, 0.05])

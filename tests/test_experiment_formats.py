"""Tests for the experiment drivers' aggregation/formatting logic.

These cover the pure (non-simulating) parts of the experiment modules so
the benchmark harness's failure modes are caught cheaply.
"""

import numpy as np
import pytest

from repro.attacks.campaign import CampaignCell, CampaignResult, RunOutcome
from repro.experiments.fig8 import Fig8Row, format_results as format_fig8
from repro.experiments.fig9 import _marginal, format_results as format_fig9, shape_checks
from repro.experiments.table4 import (
    PAPER_TABLE4,
    average_accuracy,
    combined,
    format_results as format_table4,
    run_table4,
)


def outcome(cell, label, model, raven):
    return RunOutcome(
        cell=cell, seed=0, label=label, raven_detected=raven,
        model_detected=model, deviation_mm=2.0 if label else 0.0,
        attack_fired=cell is not None,
    )


@pytest.fixture
def campaigns():
    out = {}
    for scenario in ("A", "B"):
        result = CampaignResult(scenario=scenario)
        strong = CampaignCell(scenario, 10.0, 64)
        weak = CampaignCell(scenario, 1.0, 2)
        result.outcomes = [
            outcome(strong, True, True, scenario == "B"),
            outcome(strong, True, True, False),
            outcome(weak, False, False, False),
            outcome(weak, False, False, False),
            outcome(None, False, False, False),
        ]
        out[scenario] = result
    return out


class TestTable4Helpers:
    def test_run_table4_rows(self, campaigns):
        rows = run_table4(campaigns)
        assert [(s, t) for s, t, _ in rows] == [
            ("A", "Dynamic Model"), ("A", "RAVEN"),
            ("B", "Dynamic Model"), ("B", "RAVEN"),
        ]

    def test_average_accuracy(self, campaigns):
        rows = run_table4(campaigns)
        acc = average_accuracy(rows)
        assert 0.0 < acc <= 1.0

    def test_average_accuracy_empty(self):
        assert average_accuracy([]) == 0.0

    def test_combined_pools(self, campaigns):
        rows = run_table4(campaigns)
        pooled = combined(rows, "Dynamic Model")
        assert pooled.total == 10  # 5 per scenario

    def test_format_includes_paper_reference(self, campaigns):
        text = format_table4(run_table4(campaigns))
        assert "paper ACC/TPR/FPR/F1" in text
        paper_a = "/".join(f"{v:.1f}" for v in PAPER_TABLE4[("A", "Dynamic Model")])
        assert paper_a in text


class TestFig9Helpers:
    def test_marginal_sorted_by_key(self, campaigns):
        cells = campaigns["B"].cell_probabilities()
        rows = _marginal(cells, "error_value")
        keys = [r[0] for r in rows]
        assert keys == sorted(keys)

    def test_shape_checks_pass_on_monotone_data(self, campaigns):
        tables = {s: campaigns[s].cell_probabilities() for s in ("A", "B")}
        checks = shape_checks(tables)
        assert all(checks.values()), checks

    def test_format_mentions_both_scenarios(self, campaigns):
        tables = {s: campaigns[s].cell_probabilities() for s in ("A", "B")}
        text = format_fig9(tables)
        assert "scenario A" in text and "scenario B" in text
        assert "P(impact)" in text


class TestFig8Formatting:
    def test_format_reports_ratio(self):
        rows = [
            Fig8Row("rk4", 0.03, np.array([1e-3, 1e-3, 1e-4]),
                    np.array([0.1, 0.1, 0.01]), 2),
            Fig8Row("euler", 0.01, np.array([2e-3, 2e-3, 2e-4]),
                    np.array([0.2, 0.2, 0.02]), 2),
        ]
        text = format_fig8(rows)
        assert "rk4/euler time ratio: 3.00x" in text
        assert "J3 jpos (mm)" in text

    def test_format_without_euler_omits_ratio(self):
        rows = [
            Fig8Row("rk4", 0.03, np.zeros(3) + 1e-3, np.zeros(3) + 0.1, 1)
        ]
        assert "ratio" not in format_fig8(rows)

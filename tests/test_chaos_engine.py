"""Fault-injection tests for the execution engine itself.

Every injected fault class must end in one of exactly two outcomes:

- a **correct completed result** — identical to a fault-free run — when
  the retry budget / serial degradation can absorb the fault, or
- a **clean typed error** (:class:`~repro.errors.TaskExecutionError`)
  when it can't.

Silent drops, reordered results, or raw ``BrokenProcessPool`` escapes
are all failures of the engine, not of the test.
"""

from __future__ import annotations

import pytest

from repro.errors import ChaosFault, ExecutionError, TaskExecutionError
from repro.experiments import parallel as engine
from repro.testing import ChaosInjector, FaultPlan, FaultSpec
from repro.testing.faults import ALWAYS

pytestmark = pytest.mark.chaos


def _square(x):
    return x * x


def _injector(*specs):
    return ChaosInjector(FaultPlan(list(specs)))


class TestFaultPlan:
    def test_task_fault_attempt_window(self):
        plan = FaultPlan([FaultSpec(kind="raise", index=2, times=2)])
        assert plan.task_fault(2, 0) is not None
        assert plan.task_fault(2, 1) is not None
        assert plan.task_fault(2, 2) is None  # budget spent: retry succeeds
        assert plan.task_fault(1, 0) is None  # other tasks untouched

    def test_always_never_stops_firing(self):
        plan = FaultPlan([FaultSpec(kind="raise", index=0, times=ALWAYS)])
        assert all(plan.task_fault(0, attempt) for attempt in range(10))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="raise")  # task fault without an index
        with pytest.raises(ValueError):
            FaultSpec(kind="truncate")  # cache fault without a match
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor", index=0)

    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random_task_faults(seed=7, n_tasks=50, rate=0.3)
        b = FaultPlan.random_task_faults(seed=7, n_tasks=50, rate=0.3)
        assert a.specs == b.specs
        assert a.specs != FaultPlan.random_task_faults(8, 50, 0.3).specs

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec(kind="crash", index=3, times=ALWAYS),
                FaultSpec(kind="bitflip", match="cell_*.json"),
            ],
            seed=42,
        )
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan


class TestSerialFaults:
    def test_raise_fault_retried_to_success(self):
        inj = _injector(FaultSpec(kind="raise", index=1, times=1))
        out = engine.run_tasks(
            _square, [1, 2, 3], jobs=1, injector=inj, retries=1, backoff_s=0
        )
        assert out == [1, 4, 9]

    def test_exhausted_retries_raise_typed_error(self):
        inj = _injector(FaultSpec(kind="raise", index=1, times=ALWAYS))
        with pytest.raises(TaskExecutionError) as err:
            engine.run_tasks(
                _square, [1, 2, 3], jobs=1, injector=inj, retries=2, backoff_s=0
            )
        assert err.value.index == 1
        assert err.value.attempts == 3
        assert err.value.label == "tasks"
        assert isinstance(err.value, ExecutionError)
        assert isinstance(err.value.__cause__, ChaosFault)

    def test_crash_in_parent_downgrades_to_raise(self):
        # A crash fault executing in the test process must never SIGKILL
        # it; serially it behaves as an ordinary retryable exception.
        inj = _injector(FaultSpec(kind="crash", index=0, times=1))
        out = engine.run_tasks(
            _square, [5], jobs=1, injector=inj, retries=1, backoff_s=0
        )
        assert out == [25]

    def test_results_already_yielded_survive_interrupt(self):
        inj = _injector(FaultSpec(kind="raise", index=2, times=ALWAYS))
        seen = []
        with pytest.raises(TaskExecutionError):
            for result in engine.iter_tasks(
                _square, [1, 2, 3, 4], jobs=1, injector=inj, retries=0, backoff_s=0
            ):
                seen.append(result)
        assert seen == [1, 4]  # the valid prefix checkpoints intact


class TestParallelFaults:
    def test_raise_fault_in_worker_retried(self):
        inj = _injector(FaultSpec(kind="raise", index=3, times=1))
        out = engine.run_tasks(
            _square, list(range(8)), jobs=2, injector=inj, retries=1, backoff_s=0
        )
        assert out == [x * x for x in range(8)]

    def test_worker_crash_degrades_to_serial_and_completes(self):
        # SIGKILL kills one worker -> the pool breaks -> the engine must
        # finish the batch serially with a correct, complete, ordered
        # result instead of surfacing BrokenProcessPool.
        inj = _injector(FaultSpec(kind="crash", index=2, times=1))
        out = engine.run_tasks(
            _square, list(range(6)), jobs=2, injector=inj, retries=1, backoff_s=0
        )
        assert out == [x * x for x in range(6)]

    def test_unrecoverable_crash_is_a_clean_typed_error(self):
        inj = _injector(FaultSpec(kind="crash", index=1, times=ALWAYS))
        with pytest.raises(TaskExecutionError):
            engine.run_tasks(
                _square, list(range(4)), jobs=2, injector=inj,
                retries=1, backoff_s=0,
            )

    def test_hung_worker_times_out_and_retries(self):
        inj = _injector(FaultSpec(kind="hang", index=1, times=1, hang_s=5.0))
        out = engine.run_tasks(
            _square, list(range(4)), jobs=2, injector=inj,
            retries=2, backoff_s=0, timeout_s=0.3,
        )
        assert out == [0, 1, 4, 9]

    def test_hang_without_retries_is_a_clean_typed_error(self):
        inj = _injector(FaultSpec(kind="hang", index=0, times=ALWAYS, hang_s=5.0))
        with pytest.raises(TaskExecutionError) as err:
            engine.run_tasks(
                _square, list(range(3)), jobs=2, injector=inj,
                retries=0, backoff_s=0, timeout_s=0.2,
            )
        assert err.value.index == 0

    def test_random_fault_storm_still_correct(self):
        # A seeded storm of raise faults across a third of the tasks:
        # bounded retries must absorb every one of them.
        plan = FaultPlan.random_task_faults(
            seed=11, n_tasks=20, rate=0.35, kinds=("raise",), times=1
        )
        assert plan.specs  # the storm actually contains faults
        out = engine.run_tasks(
            _square, list(range(20)), jobs=3,
            injector=ChaosInjector(plan), retries=1, backoff_s=0,
        )
        assert out == [x * x for x in range(20)]


class TestEnvHooks:
    def test_chaos_plan_env_var_reaches_workers(self, tmp_path, monkeypatch):
        plan = FaultPlan([FaultSpec(kind="raise", index=0, times=ALWAYS)])
        monkeypatch.setenv(
            "REPRO_CHAOS_PLAN", str(plan.save(tmp_path / "plan.json"))
        )
        with pytest.raises(TaskExecutionError):
            engine.run_tasks(_square, [1, 2], jobs=1, retries=0, backoff_s=0)

    def test_no_plan_means_no_injector(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_PLAN", raising=False)
        assert engine._injector_from_env() is None

    def test_retry_policy_env_vars(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "4")
        monkeypatch.setenv("REPRO_TASK_BACKOFF_S", "0")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT_S", "2.5")
        assert engine.resolve_retries() == 4
        assert engine.resolve_backoff_s() == 0.0
        assert engine.resolve_timeout_s() == 2.5
        assert engine.resolve_retries(0) == 0  # explicit beats env

    def test_retry_policy_defaults(self, monkeypatch):
        for var in ("REPRO_TASK_RETRIES", "REPRO_TASK_BACKOFF_S", "REPRO_TASK_TIMEOUT_S"):
            monkeypatch.delenv(var, raising=False)
        assert engine.resolve_retries() == engine.DEFAULT_TASK_RETRIES
        assert engine.resolve_backoff_s() == engine.DEFAULT_TASK_BACKOFF_S
        assert engine.resolve_timeout_s() is None

    def test_retry_policy_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "lots")
        with pytest.raises(ValueError):
            engine.resolve_retries()

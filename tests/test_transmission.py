"""Tests for repro.dynamics.transmission."""

import numpy as np
import pytest

from repro.dynamics.transmission import DEFAULT_GEAR_RATIOS, Transmission
from repro.errors import DynamicsError


class TestConstruction:
    def test_default_ratios_on_diagonal(self):
        t = Transmission()
        g = t.joint_to_motor
        assert np.allclose(np.diag(g), DEFAULT_GEAR_RATIOS)

    def test_coupling_below_diagonal(self):
        t = Transmission(coupling=0.05)
        g = t.joint_to_motor
        assert g[1, 0] == pytest.approx(0.05 * DEFAULT_GEAR_RATIOS[1])
        assert g[2, 1] == pytest.approx(0.05 * DEFAULT_GEAR_RATIOS[2])
        assert g[0, 1] == 0.0

    def test_zero_coupling_is_diagonal(self):
        t = Transmission(coupling=0.0)
        g = t.joint_to_motor
        assert np.allclose(g, np.diag(np.diag(g)))

    def test_negative_ratio_rejected(self):
        with pytest.raises(DynamicsError):
            Transmission(gear_ratios=(1.0, -2.0, 3.0))

    def test_singular_matrix_rejected(self):
        with pytest.raises(DynamicsError):
            Transmission(matrix=np.zeros((3, 3)))

    def test_non_square_matrix_rejected(self):
        with pytest.raises(DynamicsError):
            Transmission(matrix=np.ones((2, 3)))


class TestMappings:
    def test_position_roundtrip(self, rng):
        t = Transmission()
        jpos = rng.standard_normal(3)
        assert np.allclose(t.joint_positions(t.motor_positions(jpos)), jpos)

    def test_velocity_uses_same_matrix(self, rng):
        t = Transmission()
        jvel = rng.standard_normal(3)
        assert np.allclose(t.motor_velocities(jvel), t.motor_positions(jvel))

    def test_torque_power_conservation(self, rng):
        # tau_j . jdot == tau_m . mdot for any motion (rigid transmission).
        t = Transmission()
        tau_m = rng.standard_normal(3)
        jdot = rng.standard_normal(3)
        power_motor = tau_m @ t.motor_velocities(jdot)
        power_joint = t.joint_torques(tau_m) @ jdot
        assert power_joint == pytest.approx(power_motor)

    def test_reflected_inertia_symmetric_psd(self):
        t = Transmission()
        m = t.reflected_inertia([1e-5, 1e-5, 3e-6])
        assert np.allclose(m, m.T)
        assert np.all(np.linalg.eigvalsh(m) > 0)

    def test_reflected_inertia_scales_with_square_of_ratio(self):
        t1 = Transmission(gear_ratios=(10.0, 10.0, 10.0), coupling=0.0)
        t2 = Transmission(gear_ratios=(20.0, 20.0, 20.0), coupling=0.0)
        m1 = t1.reflected_inertia([1e-5] * 3)
        m2 = t2.reflected_inertia([1e-5] * 3)
        assert np.allclose(m2, 4.0 * m1)

    def test_reflected_damping_diagonal_without_coupling(self):
        t = Transmission(coupling=0.0)
        b = t.reflected_damping([1e-6] * 3)
        assert np.allclose(b, np.diag(np.diag(b)))

    def test_num_axes(self):
        assert Transmission().num_axes == 3

"""Tests for repro.dynamics.friction."""

import numpy as np
import pytest

from repro.dynamics.friction import FrictionModel


class TestFrictionModel:
    def test_opposes_motion(self):
        f = FrictionModel()
        qdot = np.array([0.5, -0.3, 0.1])
        torque = f.torque(qdot)
        assert np.all(np.sign(torque) == np.sign(qdot))

    def test_zero_velocity_zero_friction(self):
        assert np.allclose(FrictionModel().torque(np.zeros(3)), 0.0)

    def test_odd_function(self):
        f = FrictionModel()
        qdot = np.array([0.2, 0.4, -0.6])
        assert np.allclose(f.torque(qdot), -f.torque(-qdot))

    def test_saturates_to_coulomb_plus_viscous(self):
        f = FrictionModel()
        v = 10.0
        torque = f.torque(np.array([v, v, v]))
        expected = f.viscous * v + f.coulomb
        assert np.allclose(torque, expected, rtol=1e-6)

    def test_smooth_near_zero(self):
        # Below the smoothing velocity the Coulomb term is roughly linear.
        f = FrictionModel(smoothing_velocity=1e-2)
        small = f.torque(np.array([1e-4, 1e-4, 1e-4]))
        half = f.torque(np.array([5e-5, 5e-5, 5e-5]))
        assert np.allclose(small, 2 * half, rtol=0.01)

    def test_scaled(self):
        f = FrictionModel().scaled(2.0)
        base = FrictionModel()
        assert np.allclose(f.viscous, 2 * base.viscous)
        assert np.allclose(f.coulomb, 2 * base.coulomb)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            FrictionModel(viscous=np.array([-0.1, 0.0, 0.0]))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            FrictionModel(viscous=np.zeros(3), coulomb=np.zeros(2))

    def test_zero_smoothing_rejected(self):
        with pytest.raises(ValueError):
            FrictionModel(smoothing_velocity=0.0)

"""Tests for repro.dynamics.motor."""

import pytest

from repro.dynamics.motor import MAXON_RE30, MAXON_RE40, MotorParameters


class TestDatasheets:
    def test_re40_constants(self):
        assert MAXON_RE40.torque_constant == pytest.approx(30.2e-3)
        assert MAXON_RE40.rotor_inertia == pytest.approx(1.42e-5)

    def test_re30_smaller_than_re40(self):
        assert MAXON_RE30.rotor_inertia < MAXON_RE40.rotor_inertia
        assert MAXON_RE30.max_current < MAXON_RE40.max_current

    def test_kt_equals_ke_in_si(self):
        assert MAXON_RE40.torque_constant == MAXON_RE40.back_emf_constant


class TestMotorBehaviour:
    def test_torque_linear_in_current(self):
        assert MAXON_RE40.torque(2.0) == pytest.approx(2 * MAXON_RE40.torque(1.0))

    def test_clamp_current_limits(self):
        m = MAXON_RE40
        assert m.clamp_current(100.0) == m.max_current
        assert m.clamp_current(-100.0) == -m.max_current
        assert m.clamp_current(1.0) == 1.0

    def test_current_derivative_tracks_setpoint(self):
        m = MAXON_RE40
        assert m.current_derivative(0.0, 1.0) > 0
        assert m.current_derivative(1.0, 0.0) < 0
        assert m.current_derivative(1.0, 1.0) == 0.0

    def test_current_derivative_respects_clamp(self):
        m = MAXON_RE40
        # Setpoint beyond the amp limit behaves like the limit itself.
        assert m.current_derivative(0.0, 100.0) == m.current_derivative(
            0.0, m.max_current
        )

    def test_electrical_time_constant(self):
        m = MAXON_RE40
        assert m.electrical_time_constant() == pytest.approx(
            m.terminal_inductance / m.terminal_resistance
        )


class TestValidationAndPerturbation:
    def test_negative_parameter_rejected(self):
        with pytest.raises(ValueError):
            MotorParameters(
                name="bad",
                torque_constant=-1.0,
                back_emf_constant=1.0,
                terminal_resistance=1.0,
                terminal_inductance=1.0,
                rotor_inertia=1.0,
                viscous_damping=0.0,
                max_current=1.0,
            )

    def test_negative_damping_rejected(self):
        with pytest.raises(ValueError):
            MotorParameters(
                name="bad",
                torque_constant=1.0,
                back_emf_constant=1.0,
                terminal_resistance=1.0,
                terminal_inductance=1.0,
                rotor_inertia=1.0,
                viscous_damping=-1e-9,
                max_current=1.0,
            )

    def test_perturbed_scales_inertial_terms(self):
        p = MAXON_RE40.perturbed(1.1)
        assert p.rotor_inertia == pytest.approx(1.1 * MAXON_RE40.rotor_inertia)
        assert p.torque_constant == pytest.approx(1.1 * MAXON_RE40.torque_constant)
        # Amplifier limits are unchanged: the attacker-visible envelope.
        assert p.max_current == MAXON_RE40.max_current

    def test_perturbed_renames(self):
        assert MAXON_RE40.perturbed(1.05).name.endswith("-model")

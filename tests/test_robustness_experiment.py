"""End-to-end test of the robustness sweep at a tiny scale."""

import dataclasses

import pytest

from repro.experiments.robustness import (
    FAULT_CLASSES,
    build_fault_plan,
    format_results,
    run_robustness,
    shape_checks,
)
from repro.experiments.scale import SMOKE

pytestmark = [pytest.mark.slow, pytest.mark.robustness]

TINY = dataclasses.replace(
    SMOKE,
    robustness_seeds=1,
    robustness_fault_free_runs=1,
    robustness_duration_s=1.2,
    robustness_intensities=(0.0, 1.0),
)

CLASSES = ("packet_loss", "model_drift")


@pytest.fixture(scope="module")
def cells(tmp_path_factory):
    return run_robustness(scale=TINY, jobs=2, fault_classes=CLASSES)


def test_cell_grid_complete(cells):
    assert len(cells) == len(CLASSES) * len(TINY.robustness_intensities)
    assert {c.fault_class for c in cells} == set(CLASSES)
    for cell in cells:
        assert cell.attack_runs == 2  # one seed x scenarios A and B
        assert 0.0 <= cell.detection_prob <= 1.0

def test_baseline_detects_strong_attacks(cells):
    baseline = [c for c in cells if c.intensity == 0.0]
    assert baseline
    for cell in baseline:
        assert cell.detection_prob == 1.0, cell


def test_baseline_false_positive_rate_bounded(cells):
    """<= 2x the calibrated 0.1-0.2% per-packet target at zero intensity."""
    for cell in (c for c in cells if c.intensity == 0.0):
        assert cell.false_positive_rate <= 0.004, cell


def test_detection_degrades_with_intensity(cells):
    checks = shape_checks(cells)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"


def test_full_packet_loss_starves_scenario_a(cells):
    """At 100% packet loss the scenario-A attack has no packets to ride
    on, so at most the scenario-B run can still be detected."""
    (cell,) = [
        c
        for c in cells
        if c.fault_class == "packet_loss" and c.intensity == 1.0
    ]
    assert cell.detected_runs <= 1


def test_format_results_renders_all_cells(cells):
    text = format_results(cells)
    assert "fault class" in text
    assert text.count("packet_loss") == len(TINY.robustness_intensities)


def test_build_fault_plan_covers_all_classes():
    for fault_class in FAULT_CLASSES:
        plan = build_fault_plan(fault_class, 0.5, seed=1)
        assert plan.specs[0].kind == fault_class

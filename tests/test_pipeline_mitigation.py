"""Tests for repro.core.pipeline (DetectorGuard) and mitigation strategies."""

import numpy as np
import pytest

from repro.control.state_machine import RobotState
from repro.core.detector import AnomalyDetector
from repro.core.estimator import NextStateEstimator
from repro.core.mitigation import MitigationStrategy
from repro.core.pipeline import DetectorGuard
from repro.dynamics.plant import RavenPlant
from repro.errors import DetectorError
from repro.hw.encoder import EncoderBank
from repro.hw.motor_controller import MotorController
from repro.hw.plc import Plc
from repro.hw.usb_board import UsbBoard
from repro.hw.usb_packet import encode_command_packet
from repro.kinematics.workspace import Workspace


def make_board():
    plant = RavenPlant(initial_jpos=Workspace().neutral())
    plant.release_brakes()
    mc = MotorController(plant)
    plc = Plc(plant, mc)
    return UsbBoard(mc, plc, EncoderBank()), plant, mc, plc


def make_guard(thresholds, strategy=MitigationStrategy.MONITOR):
    return DetectorGuard(
        estimator=NextStateEstimator(),
        detector=AnomalyDetector(thresholds),
        strategy=strategy,
    )


PD = RobotState.PEDAL_DOWN
UP = RobotState.PEDAL_UP


class TestMitigationStrategy:
    def test_monitor_does_not_block(self):
        assert not MitigationStrategy.MONITOR.blocks
        assert not MitigationStrategy.MONITOR.stops_robot

    def test_block(self):
        assert MitigationStrategy.BLOCK.blocks
        assert not MitigationStrategy.BLOCK.stops_robot

    def test_block_and_estop(self):
        assert MitigationStrategy.BLOCK_AND_ESTOP.blocks
        assert MitigationStrategy.BLOCK_AND_ESTOP.stops_robot


class TestDetectorGuard:
    def test_unattached_guard_raises(self, loose_thresholds):
        guard = make_guard(loose_thresholds)
        packet_bytes = encode_command_packet(PD, True, [0, 0, 0])
        from repro.hw.usb_packet import decode_command_packet

        with pytest.raises(DetectorError):
            guard(decode_command_packet(packet_bytes), packet_bytes)

    def test_quiet_traffic_passes(self, loose_thresholds):
        board, _plant, mc, _plc = make_board()
        guard = make_guard(loose_thresholds)
        guard.attach(board)
        board.fd_write(encode_command_packet(PD, True, [100, 0, 0]))
        assert guard.stats.packets_seen == 1
        assert guard.stats.alerts == 0
        assert mc.latched_dac[0] == 100

    def test_non_pedal_down_not_evaluated(self, tight_thresholds):
        board, _plant, _mc, _plc = make_board()
        guard = make_guard(tight_thresholds)
        guard.attach(board)
        board.fd_write(encode_command_packet(UP, True, [0, 0, 0]))
        assert guard.stats.packets_seen == 1
        assert guard.stats.packets_evaluated == 0

    def test_monitor_mode_alerts_without_blocking(self, tight_thresholds):
        board, _plant, mc, _plc = make_board()
        guard = make_guard(tight_thresholds, MitigationStrategy.MONITOR)
        guard.attach(board)
        board.fd_write(encode_command_packet(PD, True, [20000, 0, 0]))
        assert guard.stats.alerts == 1
        assert guard.stats.blocked == 0
        assert mc.latched_dac[0] == 20000  # executed anyway

    def test_block_mode_prevents_execution(self, tight_thresholds):
        board, _plant, mc, _plc = make_board()
        guard = make_guard(tight_thresholds, MitigationStrategy.BLOCK)
        guard.attach(board)
        board.fd_write(encode_command_packet(PD, True, [20000, 0, 0]))
        assert guard.stats.blocked == 1
        assert mc.latched_dac[0] == 0  # robot holds the last safe command
        assert not board.plc.estop_latched

    def test_block_and_estop_latches_plc(self, tight_thresholds):
        board, _plant, _mc, plc = make_board()
        guard = make_guard(tight_thresholds, MitigationStrategy.BLOCK_AND_ESTOP)
        guard.attach(board)
        board.fd_write(encode_command_packet(PD, True, [20000, 0, 0]))
        assert plc.estop_latched
        assert "detector" in plc.estop_reason

    def test_alert_events_recorded(self, tight_thresholds):
        board, _plant, _mc, _plc = make_board()
        guard = make_guard(tight_thresholds)
        guard.attach(board)
        for _ in range(3):
            board.fd_write(encode_command_packet(PD, True, [20000, 0, 0]))
        assert guard.stats.alerted
        assert guard.stats.first_alert_cycle == 1
        assert len(guard.stats.alert_events) == 3

    def test_recording_cap_respected(self, tight_thresholds):
        board, _plant, _mc, _plc = make_board()
        guard = make_guard(tight_thresholds)
        guard.max_recorded_alerts = 2
        guard.attach(board)
        for _ in range(5):
            board.fd_write(encode_command_packet(PD, True, [20000, 0, 0]))
        assert guard.stats.alerts == 5
        assert len(guard.stats.alert_events) == 2

    def test_reset_clears_stats_and_estimator(self, tight_thresholds):
        board, _plant, _mc, _plc = make_board()
        guard = make_guard(tight_thresholds)
        guard.attach(board)
        board.fd_write(encode_command_packet(PD, True, [20000, 0, 0]))
        guard.reset()
        assert guard.stats.alerts == 0
        assert not guard.estimator.synced

    def test_preemptive_blocking_keeps_plant_still(self, tight_thresholds):
        """BLOCK mode: the malicious command never moves the physical arm
        (beyond the gravity sag an unpowered arm shows anyway)."""
        board, plant, _mc, _plc = make_board()
        guard = make_guard(tight_thresholds, MitigationStrategy.BLOCK)
        guard.attach(board)
        # Twin plant: what gravity alone does over the same horizon.
        twin = RavenPlant(initial_jpos=Workspace().neutral())
        twin.release_brakes()
        for _ in range(50):
            board.fd_write(encode_command_packet(PD, True, [30000, 0, 0]))
            board.motor_controller.tick()
            twin.step([0, 0, 0])
        assert np.allclose(plant.jpos, twin.jpos, atol=1e-6)

"""Tests for the degraded-mode detector runtime.

Covers the M-of-N alarm debouncer, the GuardSupervisor's plausibility
gate / coasting / staleness watchdog, the BLOCK->E-STOP escalation path,
and the GuardStats bookkeeping (alerts_dropped, health transitions).
"""

import numpy as np
import pytest

from repro.control.state_machine import RobotState
from repro.core.detector import AlarmDebouncer, AnomalyDetector
from repro.core.estimator import NextStateEstimator
from repro.core.mitigation import MitigationStrategy
from repro.core.pipeline import (
    DetectorGuard,
    GuardHealth,
    GuardSupervisor,
    SupervisorConfig,
)
from repro.dynamics.plant import RavenPlant
from repro.hw.encoder import EncoderBank
from repro.hw.motor_controller import MotorController
from repro.hw.plc import Plc
from repro.hw.usb_board import UsbBoard
from repro.hw.usb_packet import encode_command_packet
from repro.kinematics.workspace import Workspace

pytestmark = pytest.mark.robustness

PD = RobotState.PEDAL_DOWN
UP = RobotState.PEDAL_UP


def make_board():
    plant = RavenPlant(initial_jpos=Workspace().neutral())
    plant.release_brakes()
    mc = MotorController(plant)
    plc = Plc(plant, mc)
    return UsbBoard(mc, plc, EncoderBank()), plant, mc, plc


def make_guard(thresholds, strategy=MitigationStrategy.MONITOR, **kwargs):
    return DetectorGuard(
        estimator=NextStateEstimator(),
        detector=AnomalyDetector(thresholds),
        strategy=strategy,
        **kwargs,
    )


def quiet_packet():
    return encode_command_packet(PD, True, [100, 0, 0])


def loud_packet():
    return encode_command_packet(PD, True, [20000, 0, 0])


class TestAlarmDebouncer:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlarmDebouncer(0, 3)
        with pytest.raises(ValueError):
            AlarmDebouncer(4, 3)
        with pytest.raises(ValueError):
            AlarmDebouncer(1, 0)

    def test_m_of_n_decision(self):
        deb = AlarmDebouncer(2, 3)
        assert not deb.update(True)  # 1 of [T]
        assert deb.update(True)  # 2 of [T, T]
        assert deb.update(False)  # 2 of [T, T, F]
        assert not deb.update(False)  # 1 of [T, F, F]

    def test_reset_forgets_window(self):
        deb = AlarmDebouncer(1, 2)
        deb.update(True)
        deb.reset()
        assert deb.window == ()
        assert not deb.update(False)

    def test_detector_decision_window_defers_alert(self, tight_thresholds):
        """With a 2-of-3 window, one alarming cycle is not yet an alert."""
        board, _plant, _mc, _plc = make_board()
        guard = DetectorGuard(
            estimator=NextStateEstimator(),
            detector=AnomalyDetector(tight_thresholds, decision_window=(2, 3)),
            strategy=MitigationStrategy.MONITOR,
        )
        guard.attach(board)
        board.fd_write(loud_packet())
        assert guard.stats.alerts == 0  # raw alarm, debounced away
        board.fd_write(loud_packet())
        assert guard.stats.alerts == 1  # second alarming cycle confirms
        result = guard.stats.alert_events[0].result
        assert result.raw_alert is True


class TestBlockEscalation:
    def test_block_escalates_to_estop_after_streak(self, tight_thresholds):
        """BLOCK mode: a persistent alarm streak latches the PLC E-STOP."""
        board, _plant, _mc, plc = make_board()
        guard = make_guard(
            tight_thresholds, MitigationStrategy.BLOCK, escalate_after_blocks=3
        )
        guard.attach(board)
        for i in range(3):
            assert not plc.estop_latched, f"escalated too early at block {i}"
            board.fd_write(loud_packet())
        assert plc.estop_latched
        assert "escalating" in plc.estop_reason
        assert guard.stats.blocked == 3

    def test_quiet_cycle_resets_block_streak(self):
        # Sized between a 100-count and a 20000-count command from rest, so
        # loud packets alarm and quiet ones do not.
        from repro.core.thresholds import SafetyThresholds

        mid_thresholds = SafetyThresholds(
            motor_velocity=np.array([1.0, 1.0, 1.0]),
            motor_acceleration=np.array([1000.0, 1000.0, 1000.0]),
            joint_velocity=np.array([0.05, 0.05, 0.05]),
        )
        board, _plant, _mc, plc = make_board()
        guard = make_guard(
            mid_thresholds, MitigationStrategy.BLOCK, escalate_after_blocks=2
        )
        guard.attach(board)
        board.fd_write(loud_packet())  # block 1
        board.fd_write(quiet_packet())  # quiet: streak resets
        board.fd_write(loud_packet())  # block 1 again
        assert guard.stats.blocked == 2
        assert not plc.estop_latched
        board.fd_write(loud_packet())  # block 2 consecutive
        assert plc.estop_latched


class TestGuardStats:
    def test_alerts_dropped_counted_past_cap(self, tight_thresholds):
        board, _plant, _mc, _plc = make_board()
        guard = make_guard(tight_thresholds)
        guard.max_recorded_alerts = 2
        guard.attach(board)
        for _ in range(5):
            board.fd_write(loud_packet())
        assert guard.stats.alerts == 5
        assert len(guard.stats.alert_events) == 2
        assert guard.stats.alerts_dropped == 3
        summary = guard.stats.summary()
        assert summary["alerts_dropped"] == 3
        assert summary["alerts_recorded"] == 2

    def test_reset_clears_detector_counters(self, tight_thresholds):
        """The run-to-run state leak: reset() must also clear the
        AnomalyDetector's own evaluation/alert counters."""
        board, _plant, _mc, _plc = make_board()
        guard = make_guard(tight_thresholds)
        guard.attach(board)
        board.fd_write(loud_packet())
        assert guard.detector.evaluations == 1
        assert guard.detector.alerts == 1
        guard.reset()
        assert guard.detector.evaluations == 0
        assert guard.detector.alerts == 0
        assert guard.stats.alerts == 0

    def test_record_health_logs_transitions_once(self):
        stats = DetectorGuard(
            estimator=NextStateEstimator(), detector=AnomalyDetector()
        ).stats
        stats.record_health(5, GuardHealth.COASTING)
        stats.record_health(6, GuardHealth.COASTING)  # no-op
        stats.record_health(9, GuardHealth.NOMINAL)
        assert stats.health_transitions == [
            (5, GuardHealth.COASTING),
            (9, GuardHealth.NOMINAL),
        ]


class GlitchableBank:
    """Test helper: flips encoder counts far out of range on demand."""

    def __init__(self, board):
        self.board = board
        self.glitching = False
        board.encoders.count_fault = self._fault

    def _fault(self, counts):
        if self.glitching:
            return counts + 1_000_000
        return counts


def make_supervised(thresholds, config=None):
    board, plant, mc, plc = make_board()
    guard = make_guard(thresholds)
    supervisor = GuardSupervisor(guard, config or SupervisorConfig())
    supervisor.attach(board)
    return board, supervisor, plc


class TestGuardSupervisor:
    def test_attach_installs_supervisor_as_board_guard(self, loose_thresholds):
        board, supervisor, _plc = make_supervised(loose_thresholds)
        assert board.guard is supervisor

    def test_trusted_measurements_stay_nominal(self, loose_thresholds):
        board, supervisor, _plc = make_supervised(loose_thresholds)
        for _ in range(5):
            board.fd_write(quiet_packet())
        assert supervisor.health is GuardHealth.NOMINAL
        assert supervisor.stats.coasted_cycles == 0
        assert supervisor.stats.packets_evaluated == 5

    def test_implausible_measurement_coasts(self, loose_thresholds):
        board, supervisor, _plc = make_supervised(loose_thresholds)
        glitch = GlitchableBank(board)
        board.fd_write(quiet_packet())  # trusted baseline
        glitch.glitching = True
        board.fd_write(quiet_packet())
        assert supervisor.health is GuardHealth.COASTING
        assert supervisor.stats.implausible_measurements == 1
        assert supervisor.stats.coasted_cycles == 1
        # Detection continues while coasting (estimator already synced).
        assert supervisor.stats.packets_evaluated == 2

    def test_recovery_returns_to_nominal(self, loose_thresholds):
        board, supervisor, _plc = make_supervised(loose_thresholds)
        glitch = GlitchableBank(board)
        board.fd_write(quiet_packet())
        glitch.glitching = True
        board.fd_write(quiet_packet())
        glitch.glitching = False
        board.fd_write(quiet_packet())
        assert supervisor.health is GuardHealth.NOMINAL
        transitions = [h for _, h in supervisor.stats.health_transitions]
        assert transitions == [GuardHealth.COASTING, GuardHealth.NOMINAL]

    def test_coast_cap_escalates_to_estop(self, loose_thresholds):
        config = SupervisorConfig(max_coast_cycles=3)
        board, supervisor, plc = make_supervised(loose_thresholds, config)
        glitch = GlitchableBank(board)
        board.fd_write(quiet_packet())
        glitch.glitching = True
        for _ in range(4):
            board.fd_write(quiet_packet())
        assert supervisor.health is GuardHealth.ESTOPPED
        assert plc.estop_latched
        assert supervisor.stats.stale_escalations == 1

    def test_estop_on_stale_disabled_only_records(self, loose_thresholds):
        config = SupervisorConfig(max_coast_cycles=2, estop_on_stale=False)
        board, supervisor, plc = make_supervised(loose_thresholds, config)
        glitch = GlitchableBank(board)
        board.fd_write(quiet_packet())
        glitch.glitching = True
        for _ in range(3):
            board.fd_write(quiet_packet())
        assert supervisor.health is GuardHealth.STALE
        assert not plc.estop_latched
        assert supervisor.stats.stale_escalations == 1

    def test_estopped_supervisor_blocks_packets(self, loose_thresholds):
        config = SupervisorConfig(max_coast_cycles=1)
        board, supervisor, _plc = make_supervised(loose_thresholds, config)
        glitch = GlitchableBank(board)
        board.fd_write(quiet_packet())
        glitch.glitching = True
        board.fd_write(quiet_packet())
        board.fd_write(quiet_packet())  # escalation fires here
        assert supervisor.health is GuardHealth.ESTOPPED
        blocked_before = board.packets_blocked
        board.fd_write(quiet_packet())
        assert board.packets_blocked == blocked_before + 1

    def test_staleness_watchdog_escalates(self, loose_thresholds):
        config = SupervisorConfig(staleness_timeout_cycles=10)
        board, supervisor, plc = make_supervised(loose_thresholds, config)
        supervisor.tick_cycle(0)
        assert supervisor.health is GuardHealth.NOMINAL  # no packet yet
        board.fd_write(quiet_packet())
        supervisor.tick_cycle(5)
        assert supervisor.health is GuardHealth.NOMINAL
        supervisor.tick_cycle(16)  # 16 - 0 > 10: stream is dead
        assert supervisor.health is GuardHealth.ESTOPPED
        assert plc.estop_latched
        assert "stale" in plc.estop_reason

    def test_reset_clears_supervisor_state(self, loose_thresholds):
        config = SupervisorConfig(max_coast_cycles=1, estop_on_stale=False)
        board, supervisor, _plc = make_supervised(loose_thresholds, config)
        glitch = GlitchableBank(board)
        board.fd_write(quiet_packet())
        glitch.glitching = True
        board.fd_write(quiet_packet())
        board.fd_write(quiet_packet())
        assert supervisor.health is GuardHealth.STALE
        supervisor.reset()
        glitch.glitching = False
        assert supervisor.health is GuardHealth.NOMINAL
        board.fd_write(quiet_packet())
        assert supervisor.stats.packets_seen == 1

    def test_non_finite_measurement_rejected(self, loose_thresholds):
        board, supervisor, _plc = make_supervised(loose_thresholds)
        board.fd_write(quiet_packet())
        supervisor.guard.read_measurement = lambda: np.array(
            [np.nan, 0.0, 0.0]
        )
        board.fd_write(quiet_packet())
        assert supervisor.stats.implausible_measurements == 1

    def test_config_round_trips(self):
        config = SupervisorConfig(
            implausible_jump_rad=0.25,
            max_coast_cycles=8,
            staleness_timeout_cycles=32,
            estop_on_stale=False,
        )
        assert SupervisorConfig.from_dict(config.to_dict()) == config

"""Failure-injection tests: accidental faults, not attacks.

The paper distinguishes malicious tampering from "accidental mechanical or
electrical malfunctions or unintentional human errors" — the FDA-reported
incidents its Section III.C cites.  These tests inject non-malicious
failures into the stack and check the system degrades the way the design
intends (graceful hold, PLC E-STOP, packet rejection), which is also the
backdrop the detectors must not false-alarm against.
"""

import numpy as np
import pytest

from repro import constants
from repro.control.controller import INIT_CYCLES
from repro.control.state_machine import RobotState
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.runner import run_fault_free

DURATION = 1.1


class TestConsoleFailures:
    def test_console_silence_holds_pose(self):
        """Console dies mid-surgery: the robot holds its last desired
        pose instead of drifting or crashing."""
        config = RigConfig(seed=61, duration_s=DURATION)
        rig = SurgicalRig(config)

        original_tick = rig.console.tick
        death_time = 0.8

        def dying_tick(now, dt=constants.CONTROL_PERIOD_S):
            if now >= death_time:
                return None  # transmitter dead: no packets at all
            return original_tick(now, dt)

        rig.console.tick = dying_tick  # type: ignore[method-assign]
        trace = rig.run()
        assert not trace.estop_occurred()
        # Position nearly frozen over the silent tail.
        tail = trace.tip_array[-200:]
        assert np.linalg.norm(tail.max(axis=0) - tail.min(axis=0)) < 5e-4

    def test_garbage_datagrams_rejected(self):
        """A malfunctioning console spews noise: every datagram fails the
        checksum and teleoperation simply does not progress."""
        config = RigConfig(seed=62, duration_s=DURATION)
        rig = SurgicalRig(config)
        rng = np.random.default_rng(0)

        original_tick = rig.console.tick

        def noisy_tick(now, dt=constants.CONTROL_PERIOD_S):
            packet = original_tick(now, dt)
            # Replace the last datagram in flight with random bytes.
            rig.channel._in_flight[-1] = (
                rig.channel._in_flight[-1][0],
                rig.channel._in_flight[-1][1],
                bytes(rng.integers(0, 256, constants.ITP_PACKET_SIZE, dtype=np.uint8)),
            )
            return packet

        rig.console.tick = noisy_tick  # type: ignore[method-assign]
        trace = rig.run()
        assert rig.controller.bad_packets > 500
        assert not trace.estop_occurred()


class TestControlSoftwareFailures:
    def test_software_hang_trips_plc_watchdog(self):
        """The control process freezes: no more writes, watchdog goes
        silent, the PLC latches E-STOP and engages the brakes."""
        config = RigConfig(seed=63, duration_s=DURATION)
        rig = SurgicalRig(config)
        hang_at = int(0.8 / constants.CONTROL_PERIOD_S)

        original_tick = rig.controller.tick
        counter = {"k": 0}
        last_output = {}

        def hanging_tick(now):
            counter["k"] += 1
            if counter["k"] >= hang_at:
                return last_output["out"]  # process stuck: no new write
            last_output["out"] = original_tick(now)
            return last_output["out"]

        rig.controller.tick = hanging_tick  # type: ignore[method-assign]
        rig.run()
        assert rig.plc.estop_latched
        assert "watchdog" in rig.plc.estop_reason
        assert rig.plant.brakes_engaged

    def test_mechanical_disturbance_is_corrected(self):
        """A sudden external disturbance (bumped arm) is pulled back by
        the PID — the 'accidental failure' twin of a torque injection."""
        reference = run_fault_free(seed=64, duration_s=DURATION)
        config = RigConfig(seed=64, duration_s=DURATION)
        rig = SurgicalRig(config)
        kicked = {"done": False}

        original_tick = rig.motor_controller.tick

        def kicking_tick(dt=constants.CONTROL_PERIOD_S):
            snapshot = original_tick(dt)
            if not kicked["done"] and snapshot.time > 0.8:
                # Impulse: instantaneously add joint velocity.
                rig.plant._y[3] += 0.15
                kicked["done"] = True
            return snapshot

        rig.motor_controller.tick = kicking_tick  # type: ignore[method-assign]
        trace = rig.run()
        # The disturbance shows up...
        assert trace.max_deviation_from(reference) > 1e-4
        # ...but the PID recovers: final tracking error back to normal.
        final_gap = np.linalg.norm(trace.tip_array[-1] - reference.tip_array[-1])
        assert final_gap < 1e-3


class TestSensorFailures:
    def test_encoder_noise_burst_survivable(self):
        """Heavy (10x nominal) electrical noise on the encoders degrades
        tracking but does not destabilize the loop."""
        config = RigConfig(seed=65, duration_s=DURATION, encoder_noise_counts=3.0)
        trace = SurgicalRig(config).run()
        assert trace.states[-1] is RobotState.PEDAL_DOWN
        assert not trace.adverse_impact()

    def test_extreme_encoder_noise_trips_the_drives(self):
        """Beyond some noise level the derivative action amplifies the
        jitter until the DAC check trips — noisy sensors fail safe."""
        config = RigConfig(seed=65, duration_s=DURATION, encoder_noise_counts=8.0)
        trace = SurgicalRig(config).run()
        assert trace.estop_occurred() or trace.safety_trip_cycles

    def test_total_encoder_failure_detected_by_raven(self):
        """A stuck encoder (constant reading) makes the PID wind up until
        the software safety check trips — the robot's own mechanisms do
        catch gross *accidental* failures."""
        config = RigConfig(seed=66, duration_s=DURATION)
        rig = SurgicalRig(config)
        frozen = {}

        original_to_counts = rig.encoders.to_counts

        def sticky_to_counts(mpos):
            counts = original_to_counts(mpos)
            if rig.plant.time > 0.8:
                if "value" not in frozen:
                    frozen["value"] = counts.copy()
                return frozen["value"]
            return counts

        rig.encoders.to_counts = sticky_to_counts  # type: ignore[method-assign]
        trace = rig.run()
        assert trace.estop_occurred() or trace.safety_trip_cycles

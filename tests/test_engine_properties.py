"""Property-based tests for the engine's partitioning and plan/merge order.

The campaign layer's correctness rests on three combinatorial
invariants, checked here for arbitrary shapes rather than hand-picked
examples:

- :func:`~repro.experiments.parallel.chunked` partitions without losing,
  duplicating, or reordering tasks for any ``(n_tasks, jobs)`` pair;
- :func:`~repro.experiments.parallel.iter_tasks` yields exactly one
  result per task, in task order;
- the campaign plan (cells x repetition seeds) and the resume-time merge
  reproduce the serial sweep order for any grid and any cached/missing
  split.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.campaign import CampaignRunner
from repro.experiments import parallel as engine

pytestmark = pytest.mark.chaos


class TestChunkedProperties:
    @given(
        items=st.lists(st.integers(), max_size=200),
        chunks=st.integers(min_value=1, max_value=64),
    )
    def test_partition_invariants(self, items, chunks):
        out = engine.chunked(items, chunks)
        # No task lost, duplicated, or reordered.
        assert [x for chunk in out for x in chunk] == items
        if items:
            assert len(out) == min(chunks, len(items))
            assert all(chunk for chunk in out)  # no empty chunks
            sizes = [len(chunk) for chunk in out]
            assert max(sizes) - min(sizes) <= 1  # balanced
        else:
            assert out == []

    @given(
        n_tasks=st.integers(min_value=0, max_value=500),
        jobs=st.integers(min_value=1, max_value=32),
    )
    def test_no_task_lost_for_any_shape(self, n_tasks, jobs):
        tasks = list(range(n_tasks))
        flat = [x for chunk in engine.chunked(tasks, jobs) for x in chunk]
        assert flat == tasks


class TestIterTasksProperties:
    @given(tasks=st.lists(st.integers(min_value=-10**6, max_value=10**6), max_size=100))
    @settings(deadline=None)
    def test_serial_map_is_identity_ordered(self, tasks):
        # One result per task, in task order, values untouched.
        assert engine.run_tasks(_negate, tasks, jobs=1, backoff_s=0) == [
            -x for x in tasks
        ]

    @given(
        n_tasks=st.integers(min_value=0, max_value=60),
        retries=st.integers(min_value=0, max_value=3),
    )
    @settings(deadline=None)
    def test_retry_budget_never_changes_results(self, n_tasks, retries):
        tasks = list(range(n_tasks))
        assert (
            engine.run_tasks(_negate, tasks, jobs=1, retries=retries, backoff_s=0)
            == [-x for x in tasks]
        )


def _negate(x):
    return -x


@st.composite
def _grids(draw):
    errors = draw(
        st.lists(
            st.floats(
                min_value=0.01, max_value=100.0,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=6, unique=True,
        )
    )
    periods = draw(
        st.lists(
            st.integers(min_value=1, max_value=512),
            min_size=1, max_size=8, unique=True,
        )
    )
    repetitions = draw(st.integers(min_value=1, max_value=5))
    return errors, periods, repetitions


class TestPlanAndMergeOrder:
    def _runner(self):
        return CampaignRunner(thresholds=None)

    @given(grid=_grids())
    @settings(deadline=None)
    def test_plan_is_the_serial_nested_loop(self, grid):
        errors, periods, _ = grid
        cells = self._runner().plan_cells("A", errors, periods)
        assert [(c.error_value, c.period_ms) for c in cells] == [
            (v, p) for v in errors for p in periods
        ]
        assert len(set(cells)) == len(cells)  # no duplicate cells

    @given(grid=_grids())
    @settings(deadline=None)
    def test_plan_tasks_cover_grid_exactly_once(self, grid):
        errors, periods, repetitions = grid
        runner = self._runner()
        cells = runner.plan_cells("B", errors, periods)
        seeds = runner.repetition_seeds(repetitions)
        tasks = [(cell, seed) for cell in cells for seed in seeds]
        assert len(tasks) == len(errors) * len(periods) * repetitions
        assert len(set(tasks)) == len(tasks)
        # Repetition and fault-free seed streams never collide.
        assert not set(seeds) & set(runner.fault_free_seeds(repetitions))

    @given(
        grid=_grids(),
        data=st.data(),
    )
    @settings(deadline=None)
    def test_resume_merge_equals_serial_order(self, grid, data):
        # Model get_campaign's resume: an arbitrary subset of cells is
        # cached, the rest recompute out-of-band, and the merged list
        # must equal the full serial sweep order regardless of the split.
        errors, periods, repetitions = grid
        runner = self._runner()
        cells = runner.plan_cells("B", errors, periods)
        seeds = runner.repetition_seeds(repetitions)
        serial = [(i, seed) for i in range(len(cells)) for seed in seeds]

        cached = {
            i for i in range(len(cells))
            if data.draw(st.booleans(), label=f"cached[{i}]")
        }
        per_cell = {
            i: [(i, seed) for seed in seeds] for i in cached
        }
        missing = [i for i in range(len(cells)) if i not in cached]
        # Missing cells complete in plan order (iter_tasks contract).
        for i in missing:
            per_cell[i] = [(i, seed) for seed in seeds]

        merged = []
        for i in range(len(cells)):
            merged.extend(per_cell[i])
        assert merged == serial

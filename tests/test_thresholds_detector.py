"""Tests for repro.core.thresholds and repro.core.detector."""

import numpy as np
import pytest

from repro.core.detector import AnomalyDetector, FusionRule
from repro.core.estimator import StateEstimate
from repro.core.thresholds import SafetyThresholds, ThresholdLearner
from repro.errors import DetectorError


def make_estimate(mv=0.0, ma=0.0, jv=0.0):
    """A StateEstimate with uniform per-axis magnitudes."""
    return StateEstimate(
        motor_velocity=np.full(3, mv),
        motor_acceleration=np.full(3, ma),
        joint_velocity=np.full(3, jv),
        jpos_next=np.zeros(3),
        jvel_next=np.zeros(3),
        elapsed_s=1e-5,
    )


class TestSafetyThresholds:
    def test_wrong_shape_rejected(self):
        with pytest.raises(DetectorError):
            SafetyThresholds(
                motor_velocity=np.ones(2),
                motor_acceleration=np.ones(3),
                joint_velocity=np.ones(3),
            )

    def test_non_positive_rejected(self):
        with pytest.raises(DetectorError):
            SafetyThresholds(
                motor_velocity=np.zeros(3),
                motor_acceleration=np.ones(3),
                joint_velocity=np.ones(3),
            )

    def test_scaled(self, loose_thresholds):
        scaled = loose_thresholds.scaled(2.0)
        assert np.allclose(scaled.motor_velocity, 2 * loose_thresholds.motor_velocity)

    def test_json_roundtrip(self, tmp_path, loose_thresholds):
        path = tmp_path / "th.json"
        loose_thresholds.save(path)
        loaded = SafetyThresholds.load(path)
        assert np.allclose(loaded.motor_velocity, loose_thresholds.motor_velocity)
        assert np.allclose(
            loaded.motor_acceleration, loose_thresholds.motor_acceleration
        )
        assert loaded.percentile == loose_thresholds.percentile


class TestThresholdLearner:
    def test_defaults_to_paper_band_midpoint(self):
        learner = ThresholdLearner()
        assert 99.8 <= learner.percentile <= 99.9

    def test_fit_without_samples_raises(self):
        with pytest.raises(DetectorError):
            ThresholdLearner().fit()

    def test_invalid_percentile_rejected(self):
        with pytest.raises(DetectorError):
            ThresholdLearner(percentile=10.0)

    def test_invalid_margin_rejected(self):
        with pytest.raises(DetectorError):
            ThresholdLearner(margin=0.0)

    def test_fit_takes_percentile_of_samples(self, rng):
        learner = ThresholdLearner(percentile=90.0)
        for _ in range(1000):
            learner.observe(
                make_estimate(
                    mv=abs(rng.normal()), ma=abs(rng.normal()), jv=abs(rng.normal())
                )
            )
        thresholds = learner.fit()
        # 90th percentile of |N(0,1)| is about 1.64.
        assert np.allclose(thresholds.motor_velocity, 1.64, atol=0.2)

    def test_margin_scales_thresholds(self, rng):
        samples = [
            make_estimate(mv=abs(rng.normal()), ma=1.0, jv=1.0) for _ in range(500)
        ]
        plain = ThresholdLearner(margin=1.0)
        wide = ThresholdLearner(margin=2.0)
        for s in samples:
            plain.observe(s)
            wide.observe(s)
        assert np.allclose(
            wide.fit().motor_velocity, 2 * plain.fit().motor_velocity
        )

    def test_fit_range_returns_band_ends(self, rng):
        learner = ThresholdLearner()
        for _ in range(2000):
            learner.observe(make_estimate(mv=abs(rng.normal()), ma=1.0, jv=1.0))
        lo, hi = learner.fit_range()
        assert lo.percentile == 99.8 and hi.percentile == 99.9
        assert np.all(hi.motor_velocity >= lo.motor_velocity)

    def test_run_counter(self):
        learner = ThresholdLearner()
        learner.finish_run()
        learner.finish_run()
        assert learner.runs_observed == 2


class TestFusionRule:
    @pytest.mark.parametrize(
        "rule,alarm_counts,expected",
        [
            (FusionRule.ALL, 3, True),
            (FusionRule.ALL, 2, False),
            (FusionRule.MAJORITY, 2, True),
            (FusionRule.MAJORITY, 1, False),
            (FusionRule.ANY, 1, True),
            (FusionRule.ANY, 0, False),
        ],
    )
    def test_decisions(self, rule, alarm_counts, expected):
        alarms = {f"g{i}": i < alarm_counts for i in range(3)}
        assert rule.decide(alarms) is expected


class TestAnomalyDetector:
    def test_uncalibrated_raises(self):
        with pytest.raises(DetectorError):
            AnomalyDetector().evaluate(make_estimate())

    def test_quiet_estimate_no_alert(self, loose_thresholds):
        detector = AnomalyDetector(loose_thresholds)
        result = detector.evaluate(make_estimate(mv=0.1, ma=1.0, jv=0.01))
        assert not result.alert
        assert result.alarm_count == 0

    def test_all_fusion_requires_all_groups(self, loose_thresholds):
        detector = AnomalyDetector(loose_thresholds)
        # Only acceleration above threshold.
        result = detector.evaluate(make_estimate(mv=0.1, ma=1e6, jv=0.01))
        assert result.alarms["motor_acceleration"]
        assert not result.alert

    def test_all_groups_over_threshold_alerts(self, loose_thresholds):
        detector = AnomalyDetector(loose_thresholds)
        result = detector.evaluate(make_estimate(mv=100.0, ma=1e6, jv=10.0))
        assert result.alert
        assert result.alarm_count == 3

    def test_any_fusion_alerts_on_single_group(self, loose_thresholds):
        detector = AnomalyDetector(loose_thresholds, fusion=FusionRule.ANY)
        assert detector.evaluate(make_estimate(ma=1e6)).alert

    def test_margins_are_ratios(self):
        uniform = SafetyThresholds(
            motor_velocity=np.full(3, 10.0),
            motor_acceleration=np.full(3, 100.0),
            joint_velocity=np.full(3, 1.0),
        )
        detector = AnomalyDetector(uniform)
        result = detector.evaluate(make_estimate(mv=20.0, ma=0.0, jv=0.0))
        assert result.margins["motor_velocity"] == pytest.approx(2.0)

    def test_counters(self, loose_thresholds):
        detector = AnomalyDetector(loose_thresholds)
        detector.evaluate(make_estimate())
        detector.evaluate(make_estimate(mv=1e3, ma=1e9, jv=1e3))
        assert detector.evaluations == 2
        assert detector.alerts == 1
        detector.reset_counters()
        assert detector.evaluations == 0

    def test_calibrate_replaces_thresholds(self, loose_thresholds, tight_thresholds):
        detector = AnomalyDetector(loose_thresholds)
        assert not detector.evaluate(make_estimate(mv=1.0, ma=1.0, jv=0.1)).alert
        detector.calibrate(tight_thresholds)
        assert detector.evaluate(make_estimate(mv=1.0, ma=1.0, jv=0.1)).alert

    def test_per_axis_maximum_drives_alarm(self, loose_thresholds):
        detector = AnomalyDetector(loose_thresholds, fusion=FusionRule.ANY)
        estimate = StateEstimate(
            motor_velocity=np.array([0.0, 0.0, 60.0]),  # only axis 3 over
            motor_acceleration=np.zeros(3),
            joint_velocity=np.zeros(3),
            jpos_next=np.zeros(3),
            jvel_next=np.zeros(3),
            elapsed_s=0.0,
        )
        assert detector.evaluate(estimate).alarms["motor_velocity"]

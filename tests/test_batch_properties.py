"""Property-based tests: batched dynamics kernels equal the scalar loop.

Every function in :mod:`repro.dynamics.batch` promises *exact* float64
equality with running its scalar counterpart lane by lane — not
``allclose``, bit equality.  Hypothesis drives heterogeneous per-lane
parameters and states through both paths and compares with
``np.array_equal`` on the raw results.

Also pinned: lane order is irrelevant — permuting the lanes of a batch
permutes the outputs and nothing else.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.batch import (
    BATCH_INTEGRATORS,
    BatchedManipulatorDynamics,
    batched_current_response,
    batched_dac_to_current,
    batched_friction_torque,
    stack_friction,
)
from repro.dynamics.friction import FrictionModel
from repro.dynamics.integrators import INTEGRATORS
from repro.dynamics.manipulator import ManipulatorDynamics, ManipulatorParameters
from repro.dynamics.plant import dac_to_current

pytestmark = pytest.mark.batch

# Joint states within the RAVEN workspace (same ranges the scalar
# property tests use), plus tiny/zero velocities to cross the Coriolis
# still-arm branch.
joint_vectors = st.tuples(
    st.floats(-1.0, 1.0),
    st.floats(0.5, 2.6),
    st.floats(0.07, 0.28),
).map(np.array)

velocities = st.tuples(
    st.floats(-1.0, 1.0), st.floats(-1.0, 1.0), st.floats(-0.1, 0.1)
).map(np.array)

slow_velocities = st.tuples(
    st.floats(-1e-9, 1e-9), st.floats(-1e-9, 1e-9), st.floats(-1e-9, 1e-9)
).map(np.array)

torques = st.tuples(
    st.floats(-5.0, 5.0), st.floats(-5.0, 5.0), st.floats(-5.0, 5.0)
).map(np.array)

#: Per-lane parameter scale: lanes are heterogeneous on purpose.
param_scales = st.floats(0.7, 1.4)


def make_lane(scale: float) -> ManipulatorDynamics:
    params = ManipulatorParameters(
        base_inertias=np.array([0.02, 0.02, 0.005]) * scale,
        link2_mass=0.35 * scale,
        link2_com_radius=0.1,
        instrument_mass=0.15 * scale,
    )
    friction = FrictionModel(
        viscous=np.array([0.08, 0.08, 3.0]) * scale,
        coulomb=np.array([0.05, 0.05, 1.0]) * scale,
    )
    return ManipulatorDynamics(params=params, friction=friction)


lane_batches = st.lists(param_scales, min_size=1, max_size=6)


class TestManipulatorKernels:
    @given(scales=lane_batches, q=joint_vectors, qdot=velocities, tau=torques)
    @settings(max_examples=25, deadline=None)
    def test_mcg_and_acceleration_equal_scalar_loop(self, scales, q, qdot, tau):
        lanes = [make_lane(s) for s in scales]
        batched = BatchedManipulatorDynamics(lanes)
        n = len(lanes)
        # Heterogeneous per-lane states: shift the shared sample per lane.
        qs = np.stack([q + 0.01 * i for i in range(n)])
        qdots = np.stack([qdot * (1.0 + 0.1 * i) for i in range(n)])
        taus = np.stack([tau * (1.0 - 0.05 * i) for i in range(n)])

        m = batched.mass_matrix(qs)
        c = batched.coriolis_force(qs, qdots)
        g = batched.gravity_force(qs)
        f = batched.friction_force(qdots)
        a = batched.acceleration(qs, qdots, taus)
        for i, lane in enumerate(lanes):
            assert np.array_equal(m[i], lane.mass_matrix(qs[i]))
            assert np.array_equal(c[i], lane.coriolis_force(qs[i], qdots[i]))
            assert np.array_equal(g[i], lane.gravity_force(qs[i]))
            assert np.array_equal(f[i], lane.friction_force(qdots[i]))
            assert np.array_equal(a[i], lane.acceleration(qs[i], qdots[i], taus[i]))

    @given(scales=lane_batches, q=joint_vectors, qdot=slow_velocities, tau=torques)
    @settings(max_examples=15, deadline=None)
    def test_acceleration_still_arm_branch(self, scales, q, qdot, tau):
        """Near-zero velocities cross the Coriolis epsilon branch; the
        batched ``np.where`` selection must still match scalar exactly."""
        lanes = [make_lane(s) for s in scales]
        batched = BatchedManipulatorDynamics(lanes)
        n = len(lanes)
        qs = np.tile(q, (n, 1))
        qdots = np.tile(qdot, (n, 1))
        taus = np.tile(tau, (n, 1))
        a = batched.acceleration(qs, qdots, taus)
        for i, lane in enumerate(lanes):
            assert np.array_equal(a[i], lane.acceleration(qs[i], qdots[i], taus[i]))

    @given(scales=lane_batches, q=joint_vectors, qdot=velocities, tau=torques)
    @settings(max_examples=15, deadline=None)
    def test_lane_permutation_invariance(self, scales, q, qdot, tau):
        """Permuting lanes permutes outputs — no cross-lane leakage."""
        lanes = [make_lane(s) for s in scales]
        n = len(lanes)
        rng = np.random.default_rng(0)
        perm = rng.permutation(n)
        qs = np.stack([q + 0.01 * i for i in range(n)])
        qdots = np.stack([qdot * (1.0 + 0.1 * i) for i in range(n)])
        taus = np.stack([tau * (1.0 - 0.05 * i) for i in range(n)])

        direct = BatchedManipulatorDynamics(lanes).acceleration(qs, qdots, taus)
        permuted = BatchedManipulatorDynamics(
            [lanes[j] for j in perm]
        ).acceleration(qs[perm], qdots[perm], taus[perm])
        assert np.array_equal(permuted, direct[perm])


class TestFrictionAndMotor:
    @given(scales=lane_batches, qdot=velocities)
    @settings(max_examples=40, deadline=None)
    def test_friction_torque_equals_scalar(self, scales, qdot):
        models = [
            FrictionModel(
                viscous=np.array([0.08, 0.08, 3.0]) * s,
                coulomb=np.array([0.05, 0.05, 1.0]) * s,
            )
            for s in scales
        ]
        viscous, coulomb, smoothing = stack_friction(models)
        qdots = np.stack([qdot * (1.0 + 0.2 * i) for i in range(len(models))])
        batched = batched_friction_torque(qdots, viscous, coulomb, smoothing)
        for i, model in enumerate(models):
            assert np.array_equal(batched[i], model.torque(qdots[i]))

    @given(
        setpoint=st.floats(-6.0, 6.0),
        i0=st.floats(-6.0, 6.0),
        elapsed=st.floats(1e-5, 1e-3),
        lanes=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_current_response_equals_scalar(self, setpoint, i0, elapsed, lanes):
        """The first-order current-loop response — the motor ODE's closed
        form — matches the scalar plant's expression per lane/channel."""
        tau = np.array([2e-4, 2e-4, 3e-4])
        setpoints = np.stack(
            [np.array([setpoint, -setpoint, setpoint / 2]) * (1 + 0.1 * i)
             for i in range(lanes)]
        )
        currents = np.stack(
            [np.array([i0, i0 / 2, -i0]) * (1 - 0.05 * i) for i in range(lanes)]
        )
        batched = batched_current_response(setpoints, currents, elapsed, tau)
        for i in range(lanes):
            scalar = setpoints[i] + (currents[i] - setpoints[i]) * np.exp(
                -elapsed / tau
            )
            assert np.array_equal(batched[i], scalar)

    @given(
        dac=st.tuples(
            st.integers(-32767, 32767),
            st.integers(-32767, 32767),
            st.integers(-32767, 32767),
        ),
        lanes=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_dac_to_current_equals_scalar(self, dac, lanes):
        rows = np.stack(
            [np.array(dac, dtype=float) * (1 - 0.01 * i) for i in range(lanes)]
        )
        batched = batched_dac_to_current(rows)
        for i in range(lanes):
            assert np.array_equal(batched[i], dac_to_current(rows[i]))


class TestIntegrators:
    @given(
        y0=st.tuples(st.floats(-2.0, 2.0), st.floats(-2.0, 2.0)).map(np.array),
        h=st.floats(1e-4, 1e-2),
        lanes=st.integers(1, 6),
        name=st.sampled_from(sorted(INTEGRATORS)),
    )
    @settings(max_examples=30, deadline=None)
    def test_each_integrator_equals_scalar_loop(self, y0, h, lanes, name):
        """Each batched stepper, on an elementwise ODE with per-lane
        coefficients, reproduces the scalar stepper bit for bit."""
        coeff = np.stack(
            [np.array([-1.0 - 0.3 * i, 0.5 + 0.1 * i]) for i in range(lanes)]
        )
        ys = np.stack([y0 * (1.0 + 0.2 * i) for i in range(lanes)])

        def batch_f(t, y):
            return coeff * y + np.sin(t + y)

        stepped = BATCH_INTEGRATORS[name](batch_f, 0.1, ys, h)
        scalar_step = INTEGRATORS[name]
        for i in range(lanes):
            def lane_f(t, y, i=i):
                return coeff[i] * y + np.sin(t + y)

            assert np.array_equal(stepped[i], scalar_step(lane_f, 0.1, ys[i], h))

    def test_batch_integrator_table_matches_scalar_table(self):
        assert set(BATCH_INTEGRATORS) == set(INTEGRATORS)

"""Tests for repro.core.attestation (remote software attestation)."""

import pytest

from repro.attacks.eavesdrop import EavesdropLogger, build_eavesdropper_library
from repro.core.attestation import AttestationMonitor
from repro.sysmodel.linker import DynamicLinker, SystemEnvironment


def clean_system():
    env = SystemEnvironment()
    linker = DynamicLinker(env)
    process = linker.spawn("r2_control", user="surgeon")
    return env, linker, process


def infect(env, linker, process):
    library, _ = build_eavesdropper_library(EavesdropLogger())
    env.set_user_preload("surgeon", library)
    process.relink(linker)


class TestEnrollment:
    def test_scan_without_enroll_raises(self):
        env, _linker, process = clean_system()
        monitor = AttestationMonitor(process, env)
        with pytest.raises(RuntimeError):
            monitor.scan()

    def test_clean_system_attests_trusted(self):
        env, _linker, process = clean_system()
        monitor = AttestationMonitor(process, env)
        monitor.enroll()
        assert monitor.scan().trusted

    def test_measurement_stable_across_scans(self):
        env, _linker, process = clean_system()
        monitor = AttestationMonitor(process, env)
        baseline = monitor.enroll()
        assert monitor.scan().measurement == baseline
        assert monitor.scan().measurement == baseline

    def test_invalid_period_rejected(self):
        env, _linker, process = clean_system()
        with pytest.raises(ValueError):
            AttestationMonitor(process, env, period_cycles=0)


class TestDetection:
    def test_preloaded_malware_detected(self):
        env, linker, process = clean_system()
        monitor = AttestationMonitor(process, env)
        monitor.enroll()
        infect(env, linker, process)
        report = monitor.scan()
        assert not report.trusted
        assert monitor.compromised_detected

    def test_preload_without_relink_still_detected(self):
        """Even before a process restart the preload *configuration*
        changed, which the verifier measures."""
        env, linker, process = clean_system()
        monitor = AttestationMonitor(process, env)
        monitor.enroll()
        library, _ = build_eavesdropper_library(EavesdropLogger())
        env.set_user_preload("surgeon", library)
        assert not monitor.scan().trusted

    def test_periodic_tick_scans_on_schedule(self):
        env, _linker, process = clean_system()
        monitor = AttestationMonitor(process, env, period_cycles=100)
        monitor.enroll()
        reports = [monitor.tick() for _ in range(250)]
        scans = [r for r in reports if r is not None]
        assert len(scans) == 2
        assert scans[0].cycle == 100 and scans[1].cycle == 200


class TestToctouWindow:
    def test_detection_latency_is_up_to_one_period(self):
        """Malware installed right after a scan owns almost a full period
        — the TOCTOU window the paper warns attestation cannot close."""
        env, linker, process = clean_system()
        monitor = AttestationMonitor(process, env, period_cycles=1000)
        monitor.enroll()
        # Clean scans for one period.
        for _ in range(1000):
            monitor.tick()
        assert not monitor.compromised_detected
        infection_cycle = 1001
        infect(env, linker, process)
        for _ in range(1100):
            monitor.tick()
        latency = monitor.detection_latency_cycles(infection_cycle)
        assert latency is not None
        # Detected only at the *next* scheduled scan: ~one full period of
        # control cycles (999 attacks' worth of 1 ms windows).
        assert 900 <= latency <= 1000

    def test_first_untrusted_cycle_none_when_clean(self):
        env, _linker, process = clean_system()
        monitor = AttestationMonitor(process, env)
        monitor.enroll()
        monitor.scan()
        assert monitor.first_untrusted_cycle() is None
        assert monitor.detection_latency_cycles(0) is None

    def test_scan_cost_measured(self):
        env, _linker, process = clean_system()
        monitor = AttestationMonitor(process, env)
        monitor.enroll()
        report = monitor.scan()
        assert report.elapsed_s > 0.0

"""Tests for repro.teleop.secure_itp."""

import numpy as np
import pytest

from repro.teleop.itp import ItpPacket
from repro.teleop.secure_itp import (
    SECURE_ITP_PACKET_SIZE,
    AuthenticationError,
    SecureItpReceiver,
    SecureItpSender,
)

KEY = b"0123456789abcdef0123456789abcdef"


def packet(seq=0, dpos=(1e-4, 0.0, 0.0)):
    return ItpPacket(seq, True, np.array(dpos))


class TestSealOpen:
    def test_roundtrip(self):
        sender = SecureItpSender(KEY)
        receiver = SecureItpReceiver(KEY)
        sealed = sender.seal(packet(seq=5))
        assert len(sealed) == SECURE_ITP_PACKET_SIZE
        opened = receiver.open(sealed)
        assert opened.sequence == 5
        assert np.allclose(opened.dpos, [1e-4, 0, 0])
        assert receiver.stats.accepted == 1

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            SecureItpSender(b"short")
        with pytest.raises(ValueError):
            SecureItpReceiver(b"short")

    def test_tampered_payload_rejected(self):
        sender = SecureItpSender(KEY)
        receiver = SecureItpReceiver(KEY)
        sealed = bytearray(sender.seal(packet()))
        sealed[8] ^= 0x01
        with pytest.raises(AuthenticationError):
            receiver.open(bytes(sealed))
        assert receiver.stats.bad_tag == 1

    def test_tampered_tag_rejected(self):
        sender = SecureItpSender(KEY)
        receiver = SecureItpReceiver(KEY)
        sealed = bytearray(sender.seal(packet()))
        sealed[-1] ^= 0xFF
        with pytest.raises(AuthenticationError):
            receiver.open(bytes(sealed))

    def test_wrong_key_rejected(self):
        sealed = SecureItpSender(KEY).seal(packet())
        receiver = SecureItpReceiver(b"another-key-of-32-bytes-length!!")
        with pytest.raises(AuthenticationError):
            receiver.open(sealed)

    def test_wrong_length_rejected(self):
        receiver = SecureItpReceiver(KEY)
        with pytest.raises(AuthenticationError):
            receiver.open(b"\x00" * 10)
        assert receiver.stats.malformed == 1

    def test_replay_rejected(self):
        sender = SecureItpSender(KEY)
        receiver = SecureItpReceiver(KEY)
        sealed = sender.seal(packet(seq=3))
        receiver.open(sealed)
        with pytest.raises(AuthenticationError):
            receiver.open(sealed)
        assert receiver.stats.replayed == 1

    def test_stale_sequence_rejected(self):
        sender = SecureItpSender(KEY)
        receiver = SecureItpReceiver(KEY)
        receiver.open(sender.seal(packet(seq=10)))
        with pytest.raises(AuthenticationError):
            receiver.open(sender.seal(packet(seq=9)))

    def test_monotone_stream_accepted(self):
        sender = SecureItpSender(KEY)
        receiver = SecureItpReceiver(KEY)
        for seq in range(20):
            receiver.open(sender.seal(packet(seq=seq)))
        assert receiver.stats.accepted == 20
        assert receiver.stats.bad_tag == 0

    def test_reset_allows_new_session(self):
        sender = SecureItpSender(KEY)
        receiver = SecureItpReceiver(KEY)
        receiver.open(sender.seal(packet(seq=100)))
        receiver.reset()
        receiver.open(sender.seal(packet(seq=1)))  # new session, low seq ok


class TestSecureItpVsAttacks:
    """The reproduction point: what Secure ITP does and does not stop."""

    def test_stops_wire_mitm(self):
        """An on-path adversary cannot forge accepted motion commands."""
        from repro.attacks.network import make_mitm_adversary

        sender = SecureItpSender(KEY)
        receiver = SecureItpReceiver(KEY)
        adversary = make_mitm_adversary(error_m=1e-3, start_after=0)
        rejected = 0
        for seq in range(10):
            sealed = sender.seal(packet(seq=seq))
            # The adversary only understands plain ITP framing; against
            # the longer sealed datagram it passes data through, but a
            # *blind* bit-flip (its only remaining option) is rejected.
            tampered = bytearray(sealed)
            tampered[10] ^= 0xFF
            with pytest.raises(AuthenticationError):
                receiver.open(bytes(tampered))
            rejected += 1
        assert rejected == 10

    def test_does_not_stop_scenario_a(self):
        """The in-host wrapper modifies the packet *after* authentication
        — Secure ITP verifies fine and the malicious increment goes
        through (the TOCTOU argument)."""
        from repro.attacks.injection import UserInputInjection

        sender = SecureItpSender(KEY)
        receiver = SecureItpReceiver(KEY)
        sealed = sender.seal(packet(seq=0, dpos=(0.0, 0.0, 0.0)))
        authentic = receiver.open(sealed)  # authentication succeeds...
        payload = UserInputInjection(error_m=1e-3, direction=[1, 0, 0])
        corrupted = payload.apply(authentic)  # ...then the malware acts
        assert corrupted.dpos[0] == pytest.approx(1e-3)

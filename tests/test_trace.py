"""Tests for repro.sim.trace."""

import numpy as np
import pytest

from repro.control.state_machine import RobotState
from repro.sim.trace import RunTrace


def fill_trace(trace, positions, state=RobotState.PEDAL_DOWN):
    for k, pos in enumerate(positions):
        trace.record(
            time=k * trace.dt,
            state=state,
            tip_pos=np.asarray(pos, dtype=float),
            pos_d=np.zeros(3),
            jpos=np.zeros(3),
            jvel=np.zeros(3),
            mpos=np.zeros(3),
            dac=np.zeros(3),
        )


class TestRecording:
    def test_length(self):
        trace = RunTrace()
        fill_trace(trace, [[0, 0, 0]] * 10)
        assert len(trace) == 10

    def test_array_views(self):
        trace = RunTrace()
        fill_trace(trace, [[1, 2, 3], [4, 5, 6]])
        assert trace.tip_array.shape == (2, 3)
        assert trace.time_array.shape == (2,)
        assert np.allclose(trace.tip_array[1], [4, 5, 6])

    def test_empty_arrays(self):
        trace = RunTrace()
        assert trace.tip_array.shape == (0, 3)
        assert trace.max_jump() == 0.0


class TestJumpAnalysis:
    def test_still_robot_no_jump(self):
        trace = RunTrace()
        fill_trace(trace, [[0.1, 0.0, 0.0]] * 100)
        assert trace.max_jump() == 0.0
        assert not trace.adverse_impact()

    def test_slow_drift_within_window_not_a_jump(self):
        trace = RunTrace()
        # 10 um per 1 ms tick = 10 mm/s; 2 ms window sees only 20 um.
        positions = [[k * 1e-5, 0, 0] for k in range(300)]
        fill_trace(trace, positions)
        assert trace.max_jump(window_s=2e-3) == pytest.approx(2e-5, rel=0.01)
        assert not trace.adverse_impact()

    def test_step_jump_detected(self):
        trace = RunTrace()
        positions = [[0, 0, 0]] * 50 + [[2e-3, 0, 0]] * 50  # 2 mm step
        fill_trace(trace, positions)
        assert trace.max_jump() == pytest.approx(2e-3)
        assert trace.adverse_impact()

    def test_window_scales_detection(self):
        trace = RunTrace()
        # 0.3 mm per tick for 5 ticks = 1.5 mm over 5 ms.
        positions = [[0, 0, 0]] * 20 + [
            [min(5, k) * 3e-4, 0, 0] for k in range(1, 30)
        ]
        fill_trace(trace, positions)
        assert trace.max_jump(window_s=2e-3) < 1e-3
        assert trace.max_jump(window_s=10e-3) > 1e-3

    def test_max_deviation_from(self):
        a = RunTrace()
        b = RunTrace()
        fill_trace(a, [[0, 0, 0]] * 10)
        fill_trace(b, [[0, 0, 0]] * 5 + [[0, 5e-3, 0]] * 5)
        assert a.max_deviation_from(b) == pytest.approx(5e-3)

    def test_max_deviation_truncates_to_shorter(self):
        a = RunTrace()
        b = RunTrace()
        fill_trace(a, [[0, 0, 0]] * 3)
        fill_trace(b, [[0, 0, 0]] * 3 + [[1, 1, 1]] * 5)
        assert a.max_deviation_from(b) == 0.0


class TestBookkeeping:
    def test_estop_reasons(self):
        trace = RunTrace()
        trace.estop_events.append((0.5, "watchdog signal lost"))
        assert trace.estop_occurred()
        assert trace.estop_reasons == ["watchdog signal lost"]

    def test_pedal_down_fraction(self):
        trace = RunTrace()
        fill_trace(trace, [[0, 0, 0]] * 3, state=RobotState.PEDAL_UP)
        fill_trace(trace, [[0, 0, 0]] * 7, state=RobotState.PEDAL_DOWN)
        assert trace.pedal_down_fraction() == pytest.approx(0.7)

    def test_summary_keys(self):
        trace = RunTrace()
        fill_trace(trace, [[0, 0, 0]] * 5)
        summary = trace.summary()
        for key in ("cycles", "max_jump_mm", "adverse_impact", "estop",
                    "attack_fired", "detector_alerts"):
            assert key in summary


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = RunTrace()
        fill_trace(trace, [[k * 1e-4, 0, -0.1] for k in range(20)])
        trace.estop_events.append((0.005, "test reason"))
        trace.safety_trip_cycles.append(5)
        trace.detector_alert_cycles.extend([7, 9])
        trace.attack_first_cycle = 6
        trace.attack_activations = 3
        trace.seed = 42
        trace.label = "circle"
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = RunTrace.load(path)
        assert len(loaded) == len(trace)
        assert np.allclose(loaded.tip_array, trace.tip_array)
        assert loaded.states == trace.states
        assert loaded.estop_events == trace.estop_events
        assert loaded.safety_trip_cycles == [5]
        assert loaded.detector_alert_cycles == [7, 9]
        assert loaded.attack_first_cycle == 6
        assert loaded.seed == 42
        assert loaded.label == "circle"

    def test_metrics_survive_roundtrip(self, tmp_path):
        trace = RunTrace()
        positions = [[0, 0, 0]] * 30 + [[2e-3, 0, 0]] * 30
        fill_trace(trace, positions)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = RunTrace.load(path)
        assert loaded.max_jump() == pytest.approx(trace.max_jump())
        assert loaded.adverse_impact() == trace.adverse_impact()

    def test_none_fields_roundtrip(self, tmp_path):
        trace = RunTrace()
        fill_trace(trace, [[0, 0, 0]] * 5)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = RunTrace.load(path)
        assert loaded.attack_first_cycle is None
        assert loaded.seed is None
